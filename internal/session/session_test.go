package session

import (
	"strings"
	"testing"

	"opportune/internal/cost"
	"opportune/internal/data"
	"opportune/internal/expr"
	"opportune/internal/plan"
	"opportune/internal/storage"
	"opportune/internal/udf"
	"opportune/internal/value"
)

func demo(t *testing.T, rows int) *Session {
	t.Helper()
	s := New(cost.DefaultParams())
	rel := data.NewRelation(data.NewSchema("id", "user", "text"))
	texts := []string{"wine time", "coffee", "wine wine"}
	for i := 0; i < rows; i++ {
		rel.Append(data.Row{value.NewInt(int64(i)), value.NewInt(int64(i % 5)), value.NewStr(texts[i%3])})
	}
	s.Store.Put("logs", storage.Base, rel)
	s.Cat.RegisterBase("logs", []string{"id", "user", "text"}, "id",
		cost.Stats{Rows: int64(rows), Bytes: rel.EncodedSize()}, map[string]int64{"user": 5})
	if err := s.Cat.UDFs.Register(&udf.Descriptor{
		Name: "W", NArgs: 1, Kind: udf.KindMap, OutNames: []string{"w"},
		Map: func(args, _ []value.V) [][]value.V {
			return [][]value.V{{value.NewInt(int64(strings.Count(args[0].Str(), "wine")))}}
		},
		TrueScalar: 5,
	}); err != nil {
		t.Fatal(err)
	}
	return s
}

func q() *plan.Node {
	agg := plan.GroupAgg(
		plan.Apply(plan.Scan("logs"), "W", []string{"text"}),
		[]string{"user"}, plan.AggSpec{Func: plan.AggSum, Col: "w", As: "s"})
	return plan.Filter(agg, expr.NewCmp("s", expr.Gt, value.NewFloat(1)))
}

func TestModeNames(t *testing.T) {
	names := map[Mode]string{
		ModeOriginal: "orig", ModeBFR: "bfr", ModeDP: "dp", ModeSyntactic: "syntactic",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%v name", m)
		}
	}
	if Mode(99).String() != "unknown" {
		t.Error("unknown mode name")
	}
}

func TestRunRegistersViewsAndStats(t *testing.T) {
	s := demo(t, 300)
	m, err := s.Run(q(), "res", ModeOriginal)
	if err != nil {
		t.Fatal(err)
	}
	if m.ExecSeconds <= 0 || m.Jobs != 2 || m.ResultName != "res" {
		t.Fatalf("metrics = %+v", m)
	}
	if m.StatsSeconds <= 0 {
		t.Error("no stats-collection overhead charged")
	}
	views := s.Cat.Views()
	if len(views) != 2 { // agg view + result
		t.Fatalf("views = %d", len(views))
	}
	for _, v := range views {
		if v.Stats.Rows <= 0 || v.Stats.Bytes <= 0 {
			t.Errorf("view %s lacks stats: %+v", v.Name, v.Stats)
		}
		if v.PlanFP == "" {
			t.Errorf("view %s lacks a plan fingerprint", v.Name)
		}
	}
	// Second run of the same plan under ORIG re-registers nothing new and
	// collects no new stats.
	m2, err := s.Run(q(), "res2", ModeOriginal)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cat.Views()) != 3 { // only the new result name
		t.Errorf("views after rerun = %d", len(s.Cat.Views()))
	}
	if m2.StatsSeconds >= m.StatsSeconds {
		t.Error("stats for known views re-collected")
	}
}

func TestRunAllModesAgree(t *testing.T) {
	want := uint64(0)
	for _, mode := range []Mode{ModeOriginal, ModeBFR, ModeDP, ModeSyntactic} {
		s := demo(t, 300)
		if _, err := s.Run(q(), "warm", ModeOriginal); err != nil {
			t.Fatal(err)
		}
		m, err := s.Run(q(), "res_"+mode.String(), mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		rel, err := s.Store.Read(m.ResultName)
		if err != nil {
			t.Fatal(err)
		}
		fp := rel.Fingerprint()
		if want == 0 {
			want = fp
		} else if fp != want {
			t.Errorf("mode %v produced different data", mode)
		}
		if mode != ModeOriginal && (m.Rewrite == nil || !m.Rewrite.Improved) {
			t.Errorf("mode %v found no rewrite for an identical rerun", mode)
		}
	}
}

func TestRunErrors(t *testing.T) {
	s := demo(t, 10)
	if _, err := s.Run(plan.Scan("missing"), "x", ModeOriginal); err == nil {
		t.Error("bad plan accepted")
	}
	if _, err := s.Run(plan.Scan("logs"), "x", ModeOriginal); err == nil {
		t.Error("trivial plan accepted")
	}
}

func TestDropViews(t *testing.T) {
	s := demo(t, 100)
	if _, err := s.Run(q(), "res", ModeOriginal); err != nil {
		t.Fatal(err)
	}
	s.DropViews()
	if len(s.Cat.Views()) != 0 || len(s.Store.List(storage.View)) != 0 {
		t.Error("views remain after DropViews")
	}
	if !s.Store.Has("logs") {
		t.Error("base data dropped")
	}
}

func TestEvictionKeepsCatalogConsistent(t *testing.T) {
	s := demo(t, 400)
	s.Store.ViewCapacityBytes = 600 // tiny: most views evicted
	if _, err := s.Run(q(), "res", ModeOriginal); err != nil {
		t.Fatal(err)
	}
	for _, v := range s.Cat.Views() {
		if !s.Store.Has(v.Name) {
			t.Errorf("catalog lists evicted view %s", v.Name)
		}
	}
	// queries still run and rewrite correctly afterwards
	if _, err := s.Run(q(), "res2", ModeBFR); err != nil {
		t.Fatal(err)
	}
}

func TestAppendRowsMaintainsAndInvalidatesDerivedViews(t *testing.T) {
	s := demo(t, 100)
	if _, err := s.Run(q(), "res", ModeOriginal); err != nil {
		t.Fatal(err)
	}
	// an unrelated base table and a view over it
	other := data.NewRelation(data.NewSchema("x"))
	other.Append(data.Row{value.NewInt(1)})
	other.Append(data.Row{value.NewInt(2)})
	s.Store.Put("other", storage.Base, other)
	s.Cat.RegisterBase("other", []string{"x"}, "", cost.Stats{Rows: 2, Bytes: other.EncodedSize()}, nil)
	p2 := plan.GroupAgg(plan.Scan("other"), []string{"x"}, plan.AggSpec{Func: plan.AggCount, As: "n"})
	if _, err := s.Run(p2, "other_agg", ModeOriginal); err != nil {
		t.Fatal(err)
	}
	// identify the distributive aggregate view over "logs" (not the Filter sink)
	aggView := ""
	for _, v := range s.Cat.Views() {
		if v.Name != "res" && annDependsOn(v.Ann, "logs") {
			aggView = v.Name
		}
	}
	if aggView == "" {
		t.Fatal("setup: no aggregate view over logs")
	}

	delta := []data.Row{
		{value.NewInt(1000), value.NewInt(1), value.NewStr("wine wine wine")},
	}
	rep, err := s.AppendRows("logs", delta)
	if err != nil {
		t.Fatal(err)
	}
	// the GroupAgg(Apply(Scan)) view is distributive → maintained in place;
	// the Filter-over-aggregate sink "res" cannot be → invalidated.
	if len(rep.Maintained) != 1 || rep.Maintained[0] != aggView {
		t.Fatalf("maintained = %v, want [%s]", rep.Maintained, aggView)
	}
	if len(rep.Invalidated) != 1 || rep.Invalidated[0] != "res" {
		t.Fatalf("invalidated = %v, want [res]", rep.Invalidated)
	}
	if rep.Reasons["res"] == "" {
		t.Error("no reason recorded for invalidated sink")
	}
	if rep.MaintainSeconds <= 0 {
		t.Error("maintenance charged no simulated time")
	}
	if _, ok := s.Cat.Table(aggView); !ok || !s.Store.Has(aggView) {
		t.Error("maintained view missing from catalog or store")
	}
	if _, ok := s.Cat.Table("res"); ok {
		t.Error("invalidated sink still in catalog")
	}
	if _, ok := s.Cat.Table("other_agg"); !ok {
		t.Error("unrelated view invalidated")
	}
	if s.Store.Has("~delta~logs") {
		t.Error("temporary delta table leaked")
	}
	// base stats refreshed
	info, _ := s.Cat.Table("logs")
	if info.Stats.Rows != 101 {
		t.Errorf("rows = %d, want 101", info.Stats.Rows)
	}
	// differential oracle: the maintained view must be byte-identical to a
	// clean session that appended first and then computed the view from scratch
	ref := demo(t, 100)
	if _, err := ref.AppendRows("logs", delta); err != nil {
		t.Fatal(err)
	}
	mref, err := ref.Run(q(), "ref", ModeOriginal)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Store.Read(aggView)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Store.Read(aggView) // same annotation → same view name
	if err != nil {
		t.Fatalf("reference session lacks %s: %v", aggView, err)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Error("maintained view diverged from full recompute")
	}
	gi, _ := s.Cat.Table(aggView)
	wi, _ := ref.Cat.Table(aggView)
	if gi.Ann.Canon() != wi.Ann.Canon() {
		t.Error("maintained view annotation diverged from full recompute")
	}
	// fresh query over the appended data sees the new record and matches the
	// clean system's result
	m, err := s.Run(q(), "res2", ModeBFR)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.Store.Read(m.ResultName)
	b, _ := ref.Store.Read(mref.ResultName)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("post-append result diverged from clean recompute")
	}
	// errors
	if _, err := s.AppendRows("res2", nil); err == nil {
		t.Error("append to a view accepted")
	}
	if _, err := s.AppendRows("missing", nil); err == nil {
		t.Error("append to missing table accepted")
	}
}

func TestAppendRowsDisableMaintenanceFallsBack(t *testing.T) {
	s := demo(t, 80)
	s.DisableMaintenance = true
	if _, err := s.Run(q(), "res", ModeOriginal); err != nil {
		t.Fatal(err)
	}
	rep, err := s.AppendRows("logs", []data.Row{
		{value.NewInt(2000), value.NewInt(2), value.NewStr("wine")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Maintained) != 0 {
		t.Errorf("maintained %v with maintenance disabled", rep.Maintained)
	}
	if len(rep.Invalidated) != 2 {
		t.Errorf("invalidated = %v, want both derived views", rep.Invalidated)
	}
	for _, v := range s.Cat.Views() {
		if annDependsOn(v.Ann, "logs") {
			t.Errorf("stale view %s survived", v.Name)
		}
	}
}

func TestAppendRowsReestimatesDistincts(t *testing.T) {
	s := demo(t, 50) // users 0..4 → 5 distinct
	if _, err := s.Run(q(), "res", ModeOriginal); err != nil {
		t.Fatal(err)
	}
	before, _ := s.Cat.Table("logs")
	if before.Distinct["user"] != 5 {
		t.Fatalf("setup distinct = %d", before.Distinct["user"])
	}
	// append rows introducing 40 new user values
	var rows []data.Row
	for i := 0; i < 200; i++ {
		rows = append(rows, data.Row{
			value.NewInt(int64(5000 + i)), value.NewInt(int64(10 + i%40)), value.NewStr("wine"),
		})
	}
	rep, err := s.AppendRows("logs", rows)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StatsSeconds <= 0 {
		t.Error("no stats-collection overhead charged on append")
	}
	after, _ := s.Cat.Table("logs")
	if after.Stats.Rows != 250 {
		t.Errorf("rows = %d, want 250", after.Stats.Rows)
	}
	if after.Distinct["user"] <= 5 {
		t.Errorf("distinct(user) = %d not re-estimated after append", after.Distinct["user"])
	}
}
