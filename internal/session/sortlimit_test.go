package session

import (
	"testing"

	"opportune/internal/hiveql"
)

// TestOrderByLimitEndToEnd exercises the full path: parse, compile (single-
// reducer sort job), execute, and the LIMIT reuse semantics.
func TestOrderByLimitEndToEnd(t *testing.T) {
	s := demo(t, 200)
	st, err := hiveql.ParseOne(`
		SELECT user, SUM(w) AS total FROM logs APPLY W(text)
		GROUP BY user ORDER BY total DESC, user LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run(st.Plan, "top3", ModeOriginal)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := s.Store.Read(m.ResultName)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("rows = %d, want 3", rel.Len())
	}
	// descending totals, user ascending as tie-break
	for i := 1; i < rel.Len(); i++ {
		prev, cur := rel.Get(i-1, "total").Float(), rel.Get(i, "total").Float()
		if cur > prev {
			t.Errorf("not sorted desc: %v then %v", prev, cur)
		}
		if cur == prev && rel.Get(i, "user").Int() < rel.Get(i-1, "user").Int() {
			t.Errorf("tie-break not ascending")
		}
	}

	// The limited result view must NOT be reused semantically: an unlimited
	// query over the same aggregation must recompute (or use the unlimited
	// agg view), never read the top-3 view.
	st2, err := hiveql.ParseOne(`
		SELECT user, SUM(w) AS total FROM logs APPLY W(text) GROUP BY user`)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.Run(st2.Plan, "full", ModeBFR)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := s.Store.Read(m2.ResultName)
	if err != nil {
		t.Fatal(err)
	}
	if rel2.Len() != 5 {
		t.Fatalf("unlimited result rows = %d, want 5 users", rel2.Len())
	}
	// It should still have been rewritten — from the UNLIMITED agg view the
	// first query materialized upstream of its sort.
	if m2.Rewrite == nil || !m2.Rewrite.Improved {
		t.Error("unlimited query should reuse the pre-sort aggregation view")
	}

	// An identical limited query is syntactically identical: the syntactic
	// path may reuse it; the semantic path must also deliver a correct
	// (recomputed or composed) result.
	st3, err := hiveql.ParseOne(`
		SELECT user, SUM(w) AS total FROM logs APPLY W(text)
		GROUP BY user ORDER BY total DESC, user LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := s.Run(st3.Plan, "top3again", ModeSyntactic)
	if err != nil {
		t.Fatal(err)
	}
	rel3, err := s.Store.Read(m3.ResultName)
	if err != nil {
		t.Fatal(err)
	}
	if rel3.Fingerprint() != rel.Fingerprint() {
		t.Error("syntactic reuse of the limited plan changed the result")
	}
	if m3.Rewrite == nil || !m3.Rewrite.Improved {
		t.Error("syntactic matching should reuse the identical limited plan")
	}

	// Under BFR the same limited query must still produce the right rows
	// (upstream reuse is fine; the limited sink must be recomputed or be
	// plan-identical).
	st4, err := hiveql.ParseOne(`
		SELECT user, SUM(w) AS total FROM logs APPLY W(text)
		GROUP BY user ORDER BY total DESC, user LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	m4, err := s.Run(st4.Plan, "top3bfr", ModeBFR)
	if err != nil {
		t.Fatal(err)
	}
	rel4, err := s.Store.Read(m4.ResultName)
	if err != nil {
		t.Fatal(err)
	}
	if rel4.Fingerprint() != rel.Fingerprint() {
		t.Error("BFR run of the limited query changed the result")
	}
}

// TestOrderWithoutLimitIsReusable: pure ORDER BY does not taint — the
// sorted view answers the unsorted aggregation for free.
func TestOrderWithoutLimitIsReusable(t *testing.T) {
	s := demo(t, 200)
	st, err := hiveql.ParseOne(`
		SELECT user, SUM(w) AS total FROM logs APPLY W(text)
		GROUP BY user ORDER BY total DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(st.Plan, "sorted", ModeOriginal); err != nil {
		t.Fatal(err)
	}
	st2, err := hiveql.ParseOne(`
		SELECT user, SUM(w) AS total FROM logs APPLY W(text) GROUP BY user`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run(st2.Plan, "plain", ModeBFR)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rewrite == nil || !m.Rewrite.Improved {
		t.Fatal("sorted view not reused for the unsorted query")
	}
	if m.ExecSeconds != 0 {
		t.Errorf("expected free reuse (set-identical view), got %gs", m.ExecSeconds)
	}
}
