package storage

import (
	"testing"

	"opportune/internal/obs"
)

// TestStoreObsCounters checks the store's metric publication mirrors its
// Counters, and covers sample, eviction, and pin-contention events.
func TestStoreObsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewStore()
	s.SetObs(reg)

	base := rel(10)
	s.Put("base", Base, base)
	if _, err := s.Read("base"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample("base", 1, 1); err != nil {
		t.Fatal(err)
	}

	sz := rel(10).EncodedSize()
	s.ViewCapacityBytes = 2 * sz
	s.Policy = PolicyLRU
	s.Put("v1", View, rel(10))
	s.Put("v2", View, rel(10))
	s.Put("v3", View, rel(10)) // evicts one view

	s.Pin([]string{"base"})
	s.Pin([]string{"base"}) // second pin on a held dataset = contention
	s.Unpin([]string{"base"})
	s.Unpin([]string{"base"})

	snap := reg.Snapshot()
	c := s.Counters()
	if got := snap.Counters["storage_read_ops_total"]; got != 1 {
		t.Errorf("read ops = %d, want 1", got)
	}
	if got := snap.Counters["storage_read_bytes_total"]; got != base.EncodedSize() {
		t.Errorf("read bytes = %d, want %d", got, base.EncodedSize())
	}
	if got := snap.Counters["storage_sample_ops_total"]; got != 1 {
		t.Errorf("sample ops = %d, want 1", got)
	}
	// Reads + samples together mirror Counters.BytesRead.
	if got := snap.Counters["storage_read_bytes_total"] + snap.Counters["storage_sample_bytes_total"]; got != c.BytesRead {
		t.Errorf("obs read+sample bytes = %d, Counters.BytesRead = %d", got, c.BytesRead)
	}
	if got := snap.Counters["storage_write_ops_total"]; got != c.WriteOps {
		t.Errorf("write ops = %d, want %d", got, c.WriteOps)
	}
	if got := snap.Counters["storage_write_bytes_total"]; got != c.BytesWritten {
		t.Errorf("write bytes = %d, want %d", got, c.BytesWritten)
	}
	if got := snap.Counters["storage_evictions_total{policy=lru}"]; got != 1 {
		t.Errorf("evictions{lru} = %d, want 1", got)
	}
	if got := snap.Counters["storage_evicted_bytes_total{policy=lru}"]; got != sz {
		t.Errorf("evicted bytes = %d, want %d", got, sz)
	}
	if got := snap.Counters["storage_pin_contention_total"]; got != 1 {
		t.Errorf("pin contention = %d, want 1", got)
	}
	if got := snap.Gauges["storage_view_bytes"]; got != float64(s.ViewBytes()) {
		t.Errorf("view bytes gauge = %g, want %d", got, s.ViewBytes())
	}

	// Detaching restores the no-op path.
	s.SetObs(nil)
	s.Put("later", Base, rel(1))
	after := reg.Snapshot()
	if after.Counters["storage_write_ops_total"] != snap.Counters["storage_write_ops_total"] {
		t.Error("detached store still published metrics")
	}
}
