// Package storage simulates the HDFS layer: named datasets (base logs and
// opportunistic materialized views) with exact byte accounting for reads,
// writes, and samples.
//
// The paper's system retains every MR job output "space permitting"
// (§2.1); Store supports an optional capacity budget for view storage with
// pluggable reclamation policies (LRU, LFU, cost-benefit — §10).
package storage

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"opportune/internal/data"
	"opportune/internal/obs"
)

// Kind distinguishes base datasets (raw logs, never evicted) from
// opportunistic views.
type Kind uint8

const (
	// Base is a raw input log.
	Base Kind = iota
	// View is an opportunistic materialized view (a retained job output).
	View
)

// Dataset is one stored table plus retention metadata.
type Dataset struct {
	Name      string
	Kind      Kind
	SizeBytes int64

	// Retention metadata for reclamation policies.
	CreatedSeq  int64   // creation order
	LastUsedSeq int64   // last read order
	UseCount    int64   // number of reads
	Benefit     float64 // accumulated cost-benefit score (set by the rewriter)

	// Physical layout: the stored bytes are hash-distributed over PartParts
	// buckets on the ordered key signature IDs PartSigs (empty = layout
	// unknown). Writers declare it via SetPartitioning after materializing;
	// Refresh preserves it (maintenance rewrites the same logical artifact,
	// bucket by bucket), while Put resets it — fresh contents make no layout
	// promise until their writer declares one.
	PartSigs  []string
	PartParts int

	rel *data.Relation
}

// Rows returns the dataset's row count.
func (d *Dataset) Rows() int64 { return int64(d.rel.Len()) }

// Relation exposes the backing relation without I/O accounting; reserved
// for offline operations (persistence), not query execution.
func (d *Dataset) Relation() *data.Relation { return d.rel }

// ReadFaultInjector scripts read failures for chaos testing. The store
// stays decoupled from the fault package: anything that can answer "does
// reading this dataset fail right now?" plugs in (internal/fault.Injector
// satisfies it).
type ReadFaultInjector interface {
	// ReadError returns the scripted error for a read of the named dataset,
	// or nil when the read succeeds.
	ReadError(name string) error
}

// Counters tallies simulated I/O volume.
type Counters struct {
	BytesRead    int64
	BytesWritten int64
	ReadOps      int64
	WriteOps     int64
}

// Store is the simulated HDFS namespace.
type Store struct {
	mu       sync.Mutex
	datasets map[string]*Dataset
	seq      int64
	pinned   map[string]int // eviction-exempt datasets (inputs of running plans)
	// doomed marks datasets whose deletion was requested while pinned: the
	// data stays readable for the plans holding the pin and is removed when
	// the last pin is released. A Put or Refresh under the same name clears
	// the mark — fresh data supersedes the stale-data deletion intent.
	doomed map[string]bool

	counters Counters

	// ViewCapacityBytes bounds total view bytes; 0 means unlimited.
	ViewCapacityBytes int64
	// Policy selects eviction victims when capacity is exceeded.
	Policy ReclamationPolicy

	// Pre-resolved metric handles (nil when no registry is attached — every
	// obs method is a no-op on nil, so the uninstrumented path costs one
	// pointer check). Eviction counters are labeled by policy and resolved
	// per event, since the policy can change between evictions.
	obsReg           *obs.Registry
	obsReadOps       *obs.Counter
	obsReadBytes     *obs.Counter
	obsWriteOps      *obs.Counter
	obsWriteBytes    *obs.Counter
	obsSampleOps     *obs.Counter
	obsSampleBytes   *obs.Counter
	obsPinContention *obs.Counter
	obsViewBytes     *obs.Gauge

	// faults, when set, can fail reads (chaos testing). A failed read
	// serves no bytes, so engine-side accounting still reconciles with the
	// Counters exactly.
	faults ReadFaultInjector
}

// SetFaults attaches (or with nil detaches) a read-fault injector.
func (s *Store) SetFaults(inj ReadFaultInjector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = inj
}

// SetObs attaches a metrics registry. Pass nil to detach. Counter values are
// deterministic (byte volumes and event counts mirror Counters); only the
// storage_view_bytes gauge varies with eviction timing under capacity
// pressure.
func (s *Store) SetObs(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obsReg = reg
	s.obsReadOps = reg.Counter("storage_read_ops_total")
	s.obsReadBytes = reg.Counter("storage_read_bytes_total")
	s.obsWriteOps = reg.Counter("storage_write_ops_total")
	s.obsWriteBytes = reg.Counter("storage_write_bytes_total")
	s.obsSampleOps = reg.Counter("storage_sample_ops_total")
	s.obsSampleBytes = reg.Counter("storage_sample_bytes_total")
	s.obsPinContention = reg.Counter("storage_pin_contention_total")
	s.obsViewBytes = reg.Gauge("storage_view_bytes")
}

// viewBytesLocked totals view sizes; callers hold s.mu.
func (s *Store) viewBytesLocked() int64 {
	var total int64
	for _, d := range s.datasets {
		if d.Kind == View {
			total += d.SizeBytes
		}
	}
	return total
}

// NewStore creates an empty store with unlimited view capacity.
func NewStore() *Store {
	return &Store{
		datasets: make(map[string]*Dataset),
		pinned:   make(map[string]int),
		doomed:   make(map[string]bool),
		Policy:   PolicyLRU,
	}
}

// Pin protects datasets from capacity eviction while a plan that reads them
// executes (real systems hold leases on job inputs). Pins nest; call Unpin
// with the same names when done.
func (s *Store) Pin(names []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range names {
		if s.pinned[n] > 0 {
			s.obsPinContention.Inc()
		}
		s.pinned[n]++
	}
}

// Unpin releases a prior Pin. Releasing the last pin on a dataset whose
// deletion was deferred (see Delete) removes it now.
func (s *Store) Unpin(names []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := false
	for _, n := range names {
		if s.pinned[n] <= 1 {
			delete(s.pinned, n)
			if s.doomed[n] {
				delete(s.doomed, n)
				delete(s.datasets, n)
				dropped = true
			}
		} else {
			s.pinned[n]--
		}
	}
	if dropped {
		s.obsViewBytes.Set(float64(s.viewBytesLocked()))
	}
}

// RetentionInfo is a consistent snapshot of one view's retention signals
// (the same numbers the reclamation policies rank by). The multi-tenant
// service reads these to decide which shared views to keep pinned under
// contention; Meta returns a live pointer whose fields mutate under the
// store lock, so cross-goroutine readers use this snapshot instead.
type RetentionInfo struct {
	Name      string
	SizeBytes int64
	UseCount  int64
	Benefit   float64
	Pinned    bool
}

// ViewRetention snapshots retention metadata for every stored view.
func (s *Store) ViewRetention() []RetentionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RetentionInfo, 0, len(s.datasets))
	for name, d := range s.datasets {
		if d.Kind != View || s.doomed[name] {
			continue
		}
		out = append(out, RetentionInfo{
			Name: name, SizeBytes: d.SizeBytes,
			UseCount: d.UseCount, Benefit: d.Benefit,
			Pinned: s.pinned[name] > 0,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Pins returns a snapshot of the pin counts (tests and diagnostics).
func (s *Store) Pins() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.pinned))
	for n, c := range s.pinned {
		out[n] = c
	}
	return out
}

// EnforceBudget evicts views down to the capacity budget (eviction
// otherwise only triggers on writes; callers invoke this after releasing
// pins so a finished plan's inputs become reclaimable).
func (s *Store) EnforceBudget() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ViewCapacityBytes > 0 {
		s.evictLocked("")
	}
	s.obsViewBytes.Set(float64(s.viewBytesLocked()))
}

// Put stores (or replaces) a dataset. When a view write exceeds the
// capacity budget, other views are evicted per the policy; the incoming
// view is always admitted (if it alone exceeds capacity, every other view
// is evicted and it is still stored — simplest admission rule).
// Write bytes are counted.
//
// Replacing a dataset of the same kind preserves its retention metadata:
// re-materializing a view under an existing name is a refresh of the same
// logical artifact, so the UseCount, Benefit, and CreatedSeq signals the
// LFU, cost-benefit, and FIFO reclamation policies rank on must survive.
// (Only LastUsedSeq advances — the write itself is a touch.)
func (s *Store) Put(name string, kind Kind, rel *data.Relation) *Dataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	d := &Dataset{
		Name:        name,
		Kind:        kind,
		SizeBytes:   rel.EncodedSize(),
		CreatedSeq:  s.seq,
		LastUsedSeq: s.seq,
		rel:         rel,
	}
	if old, ok := s.datasets[name]; ok && old.Kind == kind {
		d.CreatedSeq = old.CreatedSeq
		d.UseCount = old.UseCount
		d.Benefit = old.Benefit
	}
	s.datasets[name] = d
	delete(s.doomed, name) // fresh contents supersede a deferred deletion
	s.counters.BytesWritten += d.SizeBytes
	s.counters.WriteOps++
	s.obsWriteOps.Inc()
	s.obsWriteBytes.Add(d.SizeBytes)
	if kind == View && s.ViewCapacityBytes > 0 {
		s.evictLocked(name)
	}
	s.obsViewBytes.Set(float64(s.viewBytesLocked()))
	return d
}

// Refresh replaces the contents of an existing dataset in place, keeping its
// kind and retention metadata (incremental view maintenance rewrites a view
// under its established identity). The full new size is counted as written,
// like any materialization. Errors if the dataset does not exist.
func (s *Store) Refresh(name string, rel *data.Relation) (*Dataset, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.datasets[name]
	if !ok {
		return nil, fmt.Errorf("storage: refresh of unknown dataset %q", name)
	}
	s.seq++
	d := &Dataset{
		Name:        name,
		Kind:        old.Kind,
		SizeBytes:   rel.EncodedSize(),
		CreatedSeq:  old.CreatedSeq,
		LastUsedSeq: s.seq,
		UseCount:    old.UseCount,
		Benefit:     old.Benefit,
		PartSigs:    old.PartSigs,
		PartParts:   old.PartParts,
		rel:         rel,
	}
	s.datasets[name] = d
	delete(s.doomed, name)
	s.counters.BytesWritten += d.SizeBytes
	s.counters.WriteOps++
	s.obsWriteOps.Inc()
	s.obsWriteBytes.Add(d.SizeBytes)
	if d.Kind == View && s.ViewCapacityBytes > 0 {
		s.evictLocked(name)
	}
	s.obsViewBytes.Set(float64(s.viewBytesLocked()))
	return d, nil
}

// evictLocked removes views (never the just-written `keep` view, never base
// data) until view bytes fit the budget.
func (s *Store) evictLocked(keep string) {
	for {
		var total int64
		var views []*Dataset
		for _, d := range s.datasets {
			if d.Kind == View {
				total += d.SizeBytes
				if d.Name != keep && s.pinned[d.Name] == 0 {
					views = append(views, d)
				}
			}
		}
		if total <= s.ViewCapacityBytes || len(views) == 0 {
			return
		}
		victim := s.Policy.pick(views)
		delete(s.datasets, victim.Name)
		if s.obsReg != nil {
			s.obsReg.Counter("storage_evictions_total", "policy", s.Policy.String()).Inc()
			s.obsReg.Counter("storage_evicted_bytes_total", "policy", s.Policy.String()).Add(victim.SizeBytes)
		}
	}
}

// SetPartitioning declares (or, with empty sigs or parts <= 0, clears) the
// stored layout of a dataset. Returns false for unknown names. The caller
// is the writer that just laid the bytes out; the store only remembers the
// claim and keeps it consistent across Refresh.
func (s *Store) SetPartitioning(name string, sigs []string, parts int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.datasets[name]
	if !ok {
		return false
	}
	if len(sigs) == 0 || parts <= 0 {
		d.PartSigs, d.PartParts = nil, 0
		return true
	}
	d.PartSigs = append([]string(nil), sigs...)
	d.PartParts = parts
	return true
}

// Partitioning returns a snapshot of a dataset's declared layout (nil, 0
// when unknown or undeclared). Like RetentionInfo, cross-goroutine readers
// use this copy instead of the live Dataset pointer.
func (s *Store) Partitioning(name string) ([]string, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.datasets[name]
	if !ok || len(d.PartSigs) == 0 || d.PartParts <= 0 {
		return nil, 0
	}
	return append([]string(nil), d.PartSigs...), d.PartParts
}

// Has reports whether a dataset exists.
func (s *Store) Has(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.datasets[name]
	return ok
}

// Meta returns dataset metadata without counting a read.
func (s *Store) Meta(name string) (*Dataset, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.datasets[name]
	return d, ok
}

// Read returns the relation, counting a full read of its bytes.
func (s *Store) Read(name string) (*data.Relation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.datasets[name]
	if !ok {
		return nil, fmt.Errorf("storage: dataset %q not found", name)
	}
	if s.faults != nil {
		if err := s.faults.ReadError(name); err != nil {
			// Fail before any bytes are served or counted: the engine
			// charges nothing for this read either, so Store counters and
			// engine Result volumes stay reconciled under read faults.
			return nil, fmt.Errorf("storage: read %q: %w", name, err)
		}
	}
	s.seq++
	d.LastUsedSeq = s.seq
	d.UseCount++
	s.counters.BytesRead += d.SizeBytes
	s.counters.ReadOps++
	s.obsReadOps.Inc()
	s.obsReadBytes.Add(d.SizeBytes)
	return d.rel, nil
}

// Sample returns a uniform random sample of approximately frac of the rows
// (at least one row for nonempty data), counting only the proportional
// bytes read. This is the store-level primitive behind the lightweight
// statistics job (§2.1) and UDF calibration (§4.2).
func (s *Store) Sample(name string, frac float64, seed int64) (*data.Relation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.datasets[name]
	if !ok {
		return nil, fmt.Errorf("storage: dataset %q not found", name)
	}
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("storage: sample fraction %v out of (0,1]", frac)
	}
	rng := rand.New(rand.NewSource(seed))
	out := data.NewRelation(d.rel.Schema())
	for _, r := range d.rel.Rows() {
		if rng.Float64() < frac {
			out.Append(r)
		}
	}
	if out.Len() == 0 && d.rel.Len() > 0 {
		out.Append(d.rel.Row(rng.Intn(d.rel.Len())))
	}
	s.counters.BytesRead += out.EncodedSize()
	s.counters.ReadOps++
	s.obsSampleOps.Inc()
	s.obsSampleBytes.Add(out.EncodedSize())
	return out, nil
}

// Delete removes a dataset. If the dataset is pinned by a running plan the
// removal is deferred — the data stays readable and is dropped when the last
// pin releases — and Delete returns false. Returns true when the dataset was
// removed immediately (or did not exist).
func (s *Store) Delete(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pinned[name] > 0 {
		if _, ok := s.datasets[name]; ok {
			s.doomed[name] = true
			return false
		}
		return true
	}
	delete(s.datasets, name)
	delete(s.doomed, name)
	s.obsViewBytes.Set(float64(s.viewBytesLocked()))
	return true
}

// DropViews removes every view, keeping base data. Pinned views are deferred
// like Delete. Returns the number dropped immediately. Experiments use this
// between workload phases (§8.3.1).
func (s *Store) DropViews() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for name, d := range s.datasets {
		if d.Kind == View {
			if s.pinned[name] > 0 {
				s.doomed[name] = true
				continue
			}
			delete(s.datasets, name)
			delete(s.doomed, name)
			n++
		}
	}
	s.obsViewBytes.Set(float64(s.viewBytesLocked()))
	return n
}

// List returns dataset names of the given kind, sorted.
func (s *Store) List(kind Kind) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var names []string
	for name, d := range s.datasets {
		if d.Kind == kind {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// ViewBytes returns total bytes held by views.
func (s *Store) ViewBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.viewBytesLocked()
}

// Counters returns a snapshot of the I/O counters.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// ResetCounters zeroes the I/O counters (between experiment phases).
func (s *Store) ResetCounters() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters = Counters{}
}

// ReclamationPolicy selects which view to evict when over budget.
type ReclamationPolicy uint8

// Available policies (§10 discussion; evaluated in the ablation bench).
const (
	// PolicyLRU evicts the least recently used view.
	PolicyLRU ReclamationPolicy = iota
	// PolicyLFU evicts the least frequently used view.
	PolicyLFU
	// PolicyCostBenefit evicts the view with the lowest accumulated
	// benefit-per-byte.
	PolicyCostBenefit
	// PolicyFIFO evicts the oldest view (the trivial policy of [17]).
	PolicyFIFO
)

// String names the policy.
func (p ReclamationPolicy) String() string {
	switch p {
	case PolicyLRU:
		return "lru"
	case PolicyLFU:
		return "lfu"
	case PolicyCostBenefit:
		return "cost-benefit"
	case PolicyFIFO:
		return "fifo"
	default:
		return "unknown"
	}
}

func (p ReclamationPolicy) pick(views []*Dataset) *Dataset {
	best := views[0]
	for _, d := range views[1:] {
		if p.worse(d, best) {
			best = d
		}
	}
	return best
}

// worse reports whether a is a better eviction victim than b. The ordering
// is total: ties on the policy metric fall through to recency and finally
// to the dataset name, so the victim never depends on Go map iteration
// order (evictLocked gathers candidates from a map).
func (p ReclamationPolicy) worse(a, b *Dataset) bool {
	switch p {
	case PolicyLFU:
		if a.UseCount != b.UseCount {
			return a.UseCount < b.UseCount
		}
	case PolicyCostBenefit:
		ba := a.Benefit / float64(a.SizeBytes+1)
		bb := b.Benefit / float64(b.SizeBytes+1)
		if ba != bb {
			return ba < bb
		}
	case PolicyFIFO:
		if a.CreatedSeq != b.CreatedSeq {
			return a.CreatedSeq < b.CreatedSeq
		}
	}
	// LRU and all policy-metric ties: least recently used first, then a
	// stable name tie-break.
	if a.LastUsedSeq != b.LastUsedSeq {
		return a.LastUsedSeq < b.LastUsedSeq
	}
	return a.Name < b.Name
}

// AddBenefit credits a view with benefit (cost saved by a rewrite that used
// it); used by the cost-benefit policy.
func (s *Store) AddBenefit(name string, benefit float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.datasets[name]; ok {
		d.Benefit += benefit
	}
}
