package storage

import (
	"testing"

	"opportune/internal/data"
	"opportune/internal/value"
)

func rel(n int) *data.Relation {
	r := data.NewRelation(data.NewSchema("id", "text"))
	for i := 0; i < n; i++ {
		r.Append(data.Row{value.NewInt(int64(i)), value.NewStr("row")})
	}
	return r
}

func TestPutReadCounters(t *testing.T) {
	s := NewStore()
	r := rel(10)
	d := s.Put("t", Base, r)
	if d.SizeBytes != r.EncodedSize() {
		t.Errorf("SizeBytes = %d, want %d", d.SizeBytes, r.EncodedSize())
	}
	c := s.Counters()
	if c.BytesWritten != d.SizeBytes || c.WriteOps != 1 {
		t.Errorf("write counters = %+v", c)
	}
	got, err := s.Read("t")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 10 {
		t.Errorf("read rows = %d", got.Len())
	}
	c = s.Counters()
	if c.BytesRead != d.SizeBytes || c.ReadOps != 1 {
		t.Errorf("read counters = %+v", c)
	}
	if _, err := s.Read("missing"); err == nil {
		t.Error("Read(missing) succeeded")
	}
	s.ResetCounters()
	if s.Counters() != (Counters{}) {
		t.Error("ResetCounters did not zero")
	}
}

func TestMetaAndHas(t *testing.T) {
	s := NewStore()
	s.Put("t", Base, rel(3))
	if !s.Has("t") || s.Has("x") {
		t.Error("Has wrong")
	}
	d, ok := s.Meta("t")
	if !ok || d.Rows() != 3 {
		t.Errorf("Meta = %+v, %v", d, ok)
	}
	before := s.Counters().BytesRead
	s.Meta("t")
	if s.Counters().BytesRead != before {
		t.Error("Meta counted a read")
	}
}

func TestSample(t *testing.T) {
	s := NewStore()
	s.Put("t", Base, rel(1000))
	samp, err := s.Sample("t", 0.01, 42)
	if err != nil {
		t.Fatal(err)
	}
	if samp.Len() == 0 || samp.Len() > 100 {
		t.Errorf("sample size = %d, want ~10", samp.Len())
	}
	full, _ := s.Meta("t")
	if s.Counters().BytesRead >= full.SizeBytes {
		t.Error("sample read counted as full read")
	}
	// deterministic for same seed
	s2, _ := s.Sample("t", 0.01, 42)
	if s2.Len() != samp.Len() {
		t.Error("sample not deterministic")
	}
	// nonempty source always yields at least one row
	s.Put("tiny", Base, rel(1))
	tiny, _ := s.Sample("tiny", 0.0001, 1)
	if tiny.Len() != 1 {
		t.Errorf("tiny sample = %d rows", tiny.Len())
	}
	if _, err := s.Sample("t", 0, 1); err == nil {
		t.Error("frac=0 accepted")
	}
	if _, err := s.Sample("t", 1.5, 1); err == nil {
		t.Error("frac>1 accepted")
	}
	if _, err := s.Sample("missing", 0.5, 1); err == nil {
		t.Error("missing dataset accepted")
	}
}

func TestSampleFullFraction(t *testing.T) {
	s := NewStore()
	full := rel(50)
	s.Put("t", Base, full)
	before := s.Counters()
	samp, err := s.Sample("t", 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if samp.Len() != 50 {
		t.Errorf("frac=1 sampled %d of 50 rows", samp.Len())
	}
	// frac=1 reads every row, so the byte charge equals a full read.
	if got := s.Counters().BytesRead - before.BytesRead; got != full.EncodedSize() {
		t.Errorf("frac=1 charged %d bytes, want full %d", got, full.EncodedSize())
	}
}

func TestSampleEmptyRelation(t *testing.T) {
	s := NewStore()
	s.Put("empty", Base, rel(0))
	before := s.Counters()
	samp, err := s.Sample("empty", 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if samp.Len() != 0 {
		t.Errorf("empty relation sampled %d rows", samp.Len())
	}
	// No rows means no row bytes; the op is still counted.
	c := s.Counters()
	if got := c.BytesRead - before.BytesRead; got != samp.EncodedSize() {
		t.Errorf("empty sample charged %d bytes, want %d", got, samp.EncodedSize())
	}
	if c.ReadOps != before.ReadOps+1 {
		t.Error("empty sample not counted as a read op")
	}
}

func TestSampleFallbackByteAccounting(t *testing.T) {
	// A fraction tiny enough to select no rows forces the single-row
	// fallback; the byte charge must be the fallback row's encoding, not
	// zero and not the full relation.
	s := NewStore()
	full := rel(100)
	s.Put("t", Base, full)
	before := s.Counters()
	samp, err := s.Sample("t", 1e-12, 5)
	if err != nil {
		t.Fatal(err)
	}
	if samp.Len() != 1 {
		t.Fatalf("fallback sampled %d rows, want 1", samp.Len())
	}
	got := s.Counters().BytesRead - before.BytesRead
	if got != samp.EncodedSize() {
		t.Errorf("fallback charged %d bytes, want sample's %d", got, samp.EncodedSize())
	}
	if got <= 0 || got >= full.EncodedSize() {
		t.Errorf("fallback charge %d outside (0, %d)", got, full.EncodedSize())
	}
}

func TestListDeleteDropViews(t *testing.T) {
	s := NewStore()
	s.Put("base1", Base, rel(1))
	s.Put("v1", View, rel(1))
	s.Put("v2", View, rel(1))
	if got := s.List(View); len(got) != 2 || got[0] != "v1" {
		t.Errorf("List(View) = %v", got)
	}
	if got := s.List(Base); len(got) != 1 {
		t.Errorf("List(Base) = %v", got)
	}
	s.Delete("v1")
	if s.Has("v1") {
		t.Error("Delete failed")
	}
	if n := s.DropViews(); n != 1 {
		t.Errorf("DropViews = %d", n)
	}
	if !s.Has("base1") {
		t.Error("DropViews removed base data")
	}
	if s.ViewBytes() != 0 {
		t.Error("ViewBytes after drop != 0")
	}
}

func TestCapacityEvictionLRU(t *testing.T) {
	s := NewStore()
	one := rel(10)
	sz := one.EncodedSize()
	s.ViewCapacityBytes = 2 * sz
	s.Policy = PolicyLRU
	s.Put("v1", View, rel(10))
	s.Put("v2", View, rel(10))
	// touch v1 so v2 is LRU
	if _, err := s.Read("v1"); err != nil {
		t.Fatal(err)
	}
	s.Put("v3", View, rel(10)) // must evict v2
	if s.Has("v2") {
		t.Error("LRU kept v2")
	}
	if !s.Has("v1") || !s.Has("v3") {
		t.Error("LRU evicted wrong view")
	}
}

func TestCapacityEvictionLFU(t *testing.T) {
	s := NewStore()
	sz := rel(10).EncodedSize()
	s.ViewCapacityBytes = 2 * sz
	s.Policy = PolicyLFU
	s.Put("v1", View, rel(10))
	s.Put("v2", View, rel(10))
	s.Read("v2")
	s.Read("v2")
	s.Read("v1") // v1 used once, v2 twice
	s.Put("v3", View, rel(10))
	if s.Has("v1") {
		t.Error("LFU kept less-frequently-used v1")
	}
	if !s.Has("v2") {
		t.Error("LFU evicted v2")
	}
}

func TestCapacityEvictionCostBenefit(t *testing.T) {
	s := NewStore()
	sz := rel(10).EncodedSize()
	s.ViewCapacityBytes = 2 * sz
	s.Policy = PolicyCostBenefit
	s.Put("v1", View, rel(10))
	s.Put("v2", View, rel(10))
	s.AddBenefit("v1", 100)
	s.Put("v3", View, rel(10)) // v2 has zero benefit -> victim
	if s.Has("v2") {
		t.Error("cost-benefit kept zero-benefit v2")
	}
	if !s.Has("v1") {
		t.Error("cost-benefit evicted high-benefit v1")
	}
}

func TestCapacityEvictionFIFO(t *testing.T) {
	s := NewStore()
	sz := rel(10).EncodedSize()
	s.ViewCapacityBytes = 2 * sz
	s.Policy = PolicyFIFO
	s.Put("v1", View, rel(10))
	s.Put("v2", View, rel(10))
	s.Read("v1") // recency must not matter for FIFO
	s.Put("v3", View, rel(10))
	if s.Has("v1") {
		t.Error("FIFO kept oldest view")
	}
}

func TestEvictionNeverRemovesBaseOrIncoming(t *testing.T) {
	s := NewStore()
	s.Put("base", Base, rel(100))
	s.ViewCapacityBytes = 1 // absurdly small
	s.Put("v1", View, rel(10))
	if !s.Has("base") {
		t.Error("base data evicted")
	}
	if !s.Has("v1") {
		t.Error("incoming view not admitted")
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[ReclamationPolicy]string{
		PolicyLRU: "lru", PolicyLFU: "lfu", PolicyCostBenefit: "cost-benefit", PolicyFIFO: "fifo",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%v name", p)
		}
	}
	if ReclamationPolicy(99).String() != "unknown" {
		t.Error("unknown policy name")
	}
}

func TestPutPreservesRetentionMetadataOnReplace(t *testing.T) {
	s := NewStore()
	s.Put("v", View, rel(5))
	for i := 0; i < 3; i++ {
		if _, err := s.Read("v"); err != nil {
			t.Fatal(err)
		}
	}
	s.AddBenefit("v", 42)
	before, _ := s.Meta("v")
	created, used, benefit := before.CreatedSeq, before.UseCount, before.Benefit

	// Re-materializing under the same name is a refresh, not a new view:
	// the reclamation-policy signals must survive.
	d := s.Put("v", View, rel(8))
	if d.CreatedSeq != created {
		t.Errorf("CreatedSeq = %d, want preserved %d", d.CreatedSeq, created)
	}
	if d.UseCount != used {
		t.Errorf("UseCount = %d, want preserved %d", d.UseCount, used)
	}
	if d.Benefit != benefit {
		t.Errorf("Benefit = %g, want preserved %g", d.Benefit, benefit)
	}
	if d.LastUsedSeq <= before.LastUsedSeq {
		t.Errorf("LastUsedSeq = %d, want advanced past %d (a write is a touch)", d.LastUsedSeq, before.LastUsedSeq)
	}
	if d.SizeBytes != rel(8).EncodedSize() {
		t.Errorf("SizeBytes = %d, want new size %d", d.SizeBytes, rel(8).EncodedSize())
	}

	// A kind change is a different artifact: metadata starts fresh.
	d2 := s.Put("v", Base, rel(2))
	if d2.UseCount != 0 || d2.Benefit != 0 {
		t.Errorf("kind change kept metadata: %+v", d2)
	}
}

func TestEvictionDeterministicOnTies(t *testing.T) {
	// Views tied on every policy metric must be evicted in stable name
	// order, not Go map-iteration order. Ties are forced by constructing
	// datasets directly (normal Store ops give each touch a unique seq).
	for _, p := range []ReclamationPolicy{PolicyLRU, PolicyLFU, PolicyCostBenefit, PolicyFIFO} {
		for trial := 0; trial < 20; trial++ {
			s := NewStore()
			s.Policy = p
			r := rel(4)
			per := r.EncodedSize()
			for _, name := range []string{"v-c", "v-a", "v-b"} {
				s.Put(name, View, r)
				d, _ := s.Meta(name)
				d.CreatedSeq, d.LastUsedSeq, d.UseCount, d.Benefit = 1, 1, 0, 0
			}
			s.ViewCapacityBytes = 2 * per
			s.EnforceBudget()
			got := s.List(View)
			if len(got) != 2 || got[0] != "v-b" || got[1] != "v-c" {
				t.Fatalf("%v trial %d: evicted wrong victim, left %v (want [v-b v-c])", p, trial, got)
			}
		}
	}
}

func TestDeleteDefersWhilePinned(t *testing.T) {
	s := NewStore()
	s.Put("v", View, rel(5))
	s.Pin([]string{"v"})
	s.Pin([]string{"v"}) // nested pin

	if s.Delete("v") {
		t.Error("Delete of a pinned dataset reported immediate removal")
	}
	if !s.Has("v") {
		t.Fatal("pinned dataset removed under a running plan")
	}
	if _, err := s.Read("v"); err != nil {
		t.Errorf("pinned dataset unreadable after deferred delete: %v", err)
	}
	s.Unpin([]string{"v"})
	if !s.Has("v") {
		t.Fatal("dataset removed before the last pin released")
	}
	s.Unpin([]string{"v"})
	if s.Has("v") {
		t.Error("deferred deletion not applied on last Unpin")
	}
	if len(s.Pins()) != 0 {
		t.Errorf("pin bookkeeping leaked: %v", s.Pins())
	}
	// a fresh view under the same name must not inherit the doom mark
	s.Put("v", View, rel(3))
	s.Pin([]string{"v"})
	s.Unpin([]string{"v"})
	if !s.Has("v") {
		t.Error("stale doom mark deleted a freshly written dataset")
	}
}

func TestPutClearsDeferredDeletion(t *testing.T) {
	s := NewStore()
	s.Put("v", View, rel(5))
	s.Pin([]string{"v"})
	s.Delete("v")
	// new contents arrive while still pinned: the deletion intent is stale
	s.Put("v", View, rel(8))
	s.Unpin([]string{"v"})
	if !s.Has("v") {
		t.Error("Unpin deleted a dataset refreshed after the deferred delete")
	}
}

func TestDeleteUnpinnedAndMissing(t *testing.T) {
	s := NewStore()
	s.Put("v", View, rel(2))
	if !s.Delete("v") {
		t.Error("Delete of an unpinned dataset not immediate")
	}
	if !s.Delete("missing") {
		t.Error("Delete of a missing dataset should report true")
	}
	// pinned name with no dataset behind it: nothing to defer
	s.Pin([]string{"ghost"})
	if !s.Delete("ghost") {
		t.Error("Delete of a pinned but nonexistent dataset should report true")
	}
	s.Unpin([]string{"ghost"})
}

func TestDropViewsSparesPinned(t *testing.T) {
	s := NewStore()
	s.Put("base", Base, rel(4))
	s.Put("v1", View, rel(4))
	s.Put("v2", View, rel(4))
	s.Pin([]string{"v1"})
	if n := s.DropViews(); n != 1 {
		t.Errorf("DropViews dropped %d immediately, want 1", n)
	}
	if !s.Has("v1") || s.Has("v2") || !s.Has("base") {
		t.Error("DropViews removed the wrong datasets")
	}
	s.Unpin([]string{"v1"})
	if s.Has("v1") {
		t.Error("pinned view survived past its last pin after DropViews")
	}
}

func TestRefresh(t *testing.T) {
	s := NewStore()
	s.Put("v", View, rel(5))
	for i := 0; i < 3; i++ {
		if _, err := s.Read("v"); err != nil {
			t.Fatal(err)
		}
	}
	s.AddBenefit("v", 7)
	before, _ := s.Meta("v")
	cBefore := s.Counters()

	d, err := s.Refresh("v", rel(9))
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != View || d.CreatedSeq != before.CreatedSeq ||
		d.UseCount != before.UseCount || d.Benefit != before.Benefit {
		t.Errorf("Refresh lost retention metadata: %+v", d)
	}
	if d.LastUsedSeq <= before.LastUsedSeq {
		t.Error("Refresh did not advance LastUsedSeq")
	}
	if d.SizeBytes != rel(9).EncodedSize() {
		t.Errorf("SizeBytes = %d, want %d", d.SizeBytes, rel(9).EncodedSize())
	}
	c := s.Counters()
	if c.BytesWritten-cBefore.BytesWritten != d.SizeBytes || c.WriteOps-cBefore.WriteOps != 1 {
		t.Errorf("Refresh write not counted: %+v -> %+v", cBefore, c)
	}
	if s.ViewBytes() != d.SizeBytes {
		t.Errorf("ViewBytes = %d, want %d", s.ViewBytes(), d.SizeBytes)
	}
	if _, err := s.Refresh("missing", rel(1)); err == nil {
		t.Error("Refresh of a missing dataset accepted")
	}
}
