package udf

import (
	"fmt"

	"opportune/internal/cost"
	"opportune/internal/data"
	"opportune/internal/mr"
	"opportune/internal/storage"
	"opportune/internal/value"
)

// CalibrationResult reports what a calibration run measured and charged.
type CalibrationResult struct {
	UDF         string
	SampleRows  int64
	Scalar      float64
	OverheadSec float64 // simulated seconds spent running the sample job
}

// Calibrate estimates the UDF's cost scalar empirically (§4.2): the first
// time a UDF is added, it executes on a 1% uniform random sample of the
// given dataset and the measured per-tuple CPU cost is divided by the
// baseline of its cheapest operation type. The descriptor's Scalar is set
// and the (small) simulated overhead is reported so callers can charge it.
func Calibrate(engine *mr.Engine, dataset string, d *Descriptor, argCols []string, params []value.V, seed int64) (*CalibrationResult, error) {
	const frac = 0.01
	sample, err := engine.Store.Sample(dataset, frac, seed)
	if err != nil {
		return nil, fmt.Errorf("udf: calibrate %s: %w", d.Name, err)
	}
	sampleName := fmt.Sprintf("_calib_%s_in", d.Name)
	engine.Store.Put(sampleName, storage.View, sample)

	idxs := make([]int, len(argCols))
	for i, c := range argCols {
		ix, ok := sample.Schema().Index(c)
		if !ok {
			return nil, fmt.Errorf("udf: calibrate %s: column %q not in %s", d.Name, c, sample.Schema())
		}
		idxs[i] = ix
	}

	outSchema := data.NewSchema("_probe")
	job := &mr.Job{
		Name:   "calibrate-" + d.Name,
		Inputs: []string{sampleName},
		Map: func(_ int, r data.Row, emit mr.Emit) {
			args := make([]value.V, len(idxs))
			for i, ix := range idxs {
				args[i] = r[ix]
			}
			d.probe(args, params)
			emit("", data.Row{value.NewInt(1)})
		},
		MapOutSchema: outSchema,
		OutputSchema: outSchema,
		Output:       fmt.Sprintf("_calib_%s_out", d.Name),
		OutputKind:   storage.View,
		MapCost:      []cost.LocalFn{{Ops: d.MapOps, Scalar: d.TrueScalar}},
	}
	_, res, err := engine.Run(job)
	if err != nil {
		return nil, fmt.Errorf("udf: calibrate %s: %w", d.Name, err)
	}
	// Remove calibration scratch datasets; they are not physical design.
	engine.Store.Delete(sampleName)
	engine.Store.Delete(job.Output)

	// Measured CPU seconds = Cm minus the data-read portion.
	readSec := float64(res.InputBytes) / engine.Params.ReadRate
	cpuSec := res.Breakdown.Cm - readSec
	baseline := engine.Params.CPUSecondsPerTuple(cost.LocalFn{Ops: d.MapOps, Scalar: 1})
	scalar := 1.0
	if res.InputRows > 0 && baseline > 0 {
		scalar = cpuSec / (float64(res.InputRows) * baseline)
	}
	if scalar < 1 {
		scalar = 1
	}
	d.Scalar = scalar
	return &CalibrationResult{
		UDF:         d.Name,
		SampleRows:  res.InputRows,
		Scalar:      scalar,
		OverheadSec: res.SimSeconds,
	}, nil
}

// probe exercises the UDF's executable map-side path on one tuple (the
// engine charges simulated CPU per tuple regardless; probe keeps the real
// code on the calibration path so panics surface here, not mid-query).
func (d *Descriptor) probe(args, params []value.V) {
	switch d.Kind {
	case KindMap:
		if d.Map != nil {
			d.Map(args, params)
		}
	case KindAgg:
		if d.PreMap != nil {
			d.PreMap(args, params)
		}
	}
}
