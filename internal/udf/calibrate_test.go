package udf

import (
	"strings"
	"testing"

	"opportune/internal/cost"
	"opportune/internal/data"
	"opportune/internal/mr"
	"opportune/internal/storage"
	"opportune/internal/value"
)

func calibEngine(t *testing.T, rows int) *mr.Engine {
	t.Helper()
	st := storage.NewStore()
	rel := data.NewRelation(data.NewSchema("id", "text"))
	for i := 0; i < rows; i++ {
		rel.Append(data.Row{value.NewInt(int64(i)), value.NewStr("good food and good wine")})
	}
	st.Put("twtr", storage.Base, rel)
	return mr.New(st, cost.DefaultParams())
}

func TestCalibrateRecoversScalar(t *testing.T) {
	e := calibEngine(t, 2000)
	d := sentimentUDF()
	if err := (&Registry{byName: map[string]*Descriptor{}}).Register(d); err != nil {
		t.Fatal(err)
	}
	res, err := Calibrate(e, "twtr", d, []string{"text"}, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleRows == 0 {
		t.Fatal("empty sample")
	}
	// The engine charges TrueScalar; calibration must recover ~it.
	if d.Scalar < d.TrueScalar*0.99 || d.Scalar > d.TrueScalar*1.01 {
		t.Errorf("calibrated Scalar = %g, want ≈ %g", d.Scalar, d.TrueScalar)
	}
	if res.OverheadSec <= 0 {
		t.Error("no calibration overhead recorded")
	}
	// scratch datasets cleaned up
	if e.Store.Has("_calib_UDF_SENT_in") || e.Store.Has("_calib_UDF_SENT_out") {
		t.Error("calibration scratch not cleaned")
	}
	// sample should be ~1% of rows
	if res.SampleRows > 200 {
		t.Errorf("sample too large: %d", res.SampleRows)
	}
}

func TestCalibrateAggUDF(t *testing.T) {
	st := storage.NewStore()
	rel := data.NewRelation(data.NewSchema("user_id", "reply_to"))
	for i := 0; i < 1000; i++ {
		rel.Append(data.Row{value.NewInt(int64(i % 50)), value.NewInt(int64(i % 7))})
	}
	st.Put("twtr", storage.Base, rel)
	e := mr.New(st, cost.DefaultParams())
	d := pairsUDF()
	reg := NewRegistry()
	if err := reg.Register(d); err != nil {
		t.Fatal(err)
	}
	if _, err := Calibrate(e, "twtr", d, []string{"user_id", "reply_to"}, nil, 3); err != nil {
		t.Fatal(err)
	}
	if d.Scalar < 1 {
		t.Errorf("Scalar = %g", d.Scalar)
	}
}

func TestCalibrateErrors(t *testing.T) {
	e := calibEngine(t, 100)
	d := sentimentUDF()
	if _, err := Calibrate(e, "missing", d, []string{"text"}, nil, 1); err == nil {
		t.Error("missing dataset accepted")
	}
	if _, err := Calibrate(e, "twtr", d, []string{"nope"}, nil, 1); err == nil {
		t.Error("missing column accepted")
	}
}

func TestProbeExecutesRealCode(t *testing.T) {
	// probe must call through to the real map code: a broken UDF fails
	// its calibration run (the engine converts user-code panics into job
	// failures), surfacing the bug before any query uses it.
	e := calibEngine(t, 500)
	d := sentimentUDF()
	d.Map = func(args, _ []value.V) [][]value.V {
		if strings.Contains(args[0].Str(), "good") {
			panic("boom")
		}
		return nil
	}
	if _, err := Calibrate(e, "twtr", d, []string{"text"}, nil, 1); err == nil || !strings.Contains(err.Error(), "failed") {
		t.Errorf("broken UDF calibrated without error: %v", err)
	}
}
