// Package udf is the UDF framework: descriptors pair executable local
// functions (real Go code standing in for the paper's Java/Perl/Python MR
// scripts) with the gray-box model annotations of §3, so the rest of the
// system can treat UDFs semantically without seeing their code.
//
// Two shapes cover the model's expressible UDFs:
//
//   - KindMap: a per-tuple local function (operation types 1 and 2) — adds
//     derived attributes and/or drops tuples; may explode one row into many
//     (e.g. a sentence tokenizer).
//   - KindAgg: a map+reduce pair (operation types 1,2,3) — an optional
//     per-tuple pre-map followed by grouping and a per-group reduce.
//
// Thresholds are deliberately *not* baked into UDFs: workload queries apply
// them as relational filters over UDF outputs, which lets the rewriter
// reason about them with predicate implication (a view computed at
// threshold 0.3 answers a query at 0.5). This matches the paper's model,
// where FOODIES' threshold surfaces in F′ as the comparison sent_sum > t.
package udf

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"opportune/internal/afk"
	"opportune/internal/cost"
	"opportune/internal/expr"
	"opportune/internal/value"
)

// Kind discriminates the two executable shapes.
type Kind uint8

const (
	// KindMap is a per-tuple (map-only) UDF.
	KindMap Kind = iota
	// KindAgg is a grouping (map+reduce) UDF.
	KindAgg
)

// MapFn is the per-tuple local function of a KindMap UDF: it receives the
// bound argument values and literal parameters and returns zero or more
// output-value rows (each of width len(OutNames)). Returning no rows drops
// the tuple (a filter); returning several explodes it.
type MapFn func(args, params []value.V) [][]value.V

// PreMapFn is the optional map-side local function of a KindAgg UDF: it
// turns one input tuple into a (group key, payload) pair, or drops it.
type PreMapFn func(args, params []value.V) (key, payload []value.V, keep bool)

// ReduceFn is the per-group local function of a KindAgg UDF: it receives
// the group key and all payload rows and returns the aggregate output
// values (width len(OutNames)), or nil to drop the group.
type ReduceFn func(key []value.V, payloads [][]value.V, params []value.V) []value.V

// Descriptor declares one UDF: executable code plus its model annotation.
type Descriptor struct {
	Name    string
	NArgs   int // number of attribute (column) arguments
	NParams int // number of literal parameters

	Kind Kind

	// OutNames are the new attributes this UDF produces. For KindAgg they
	// are the aggregate outputs (the key columns are listed in KeyNames).
	OutNames []string

	// KindMap fields.
	Map MapFn
	// Filters marks that Map may drop tuples; the model records an opaque
	// predicate named "<Name>.filter" over the argument signatures.
	Filters bool
	// Explode marks that Map may emit several rows per input; the model
	// re-keys the output on a derived per-row signature.
	Explode bool

	// KindAgg fields.
	KeyNames []string // output names of the group-key columns
	// KeyArgs are indexes into the arguments whose values (and signatures)
	// form the group key when PreMap is nil or passes keys through.
	KeyArgs []int
	// DerivedKeys marks that PreMap computes new key attributes rather than
	// passing argument columns through; their signatures are derived.
	DerivedKeys bool
	PreMap      PreMapFn
	Reduce      ReduceFn
	// FiltersGroups marks that Reduce may drop groups; recorded like Filters.
	FiltersGroups bool
	// PayloadCols is the width of the payload PreMap emits per tuple; it
	// defaults to the number of non-key arguments when PreMap is nil.
	PayloadCols int

	// Op types per side, for costing (defaulted by Register if empty).
	MapOps    []cost.OpType
	ReduceOps []cost.OpType

	// TrueScalar is the UDF's intrinsic computational weight relative to
	// the relational baseline; the execution engine charges it. The
	// optimizer must instead use the calibrated Scalar (§4.2).
	TrueScalar float64
	// Scalar is the calibrated multiplier; zero means uncalibrated (treated
	// as 1 by the optimizer, which underestimates until calibration runs).
	Scalar float64
}

// IsAgg reports whether this is a grouping UDF.
func (d *Descriptor) IsAgg() bool { return d.Kind == KindAgg }

// KeyCols returns the group-key output column names (KindAgg).
func (d *Descriptor) KeyCols() []string { return d.KeyNames }

// Outs returns the non-key output column names.
func (d *Descriptor) Outs() []string { return d.OutNames }

// EffectiveScalar is the calibrated scalar the optimizer should use.
func (d *Descriptor) EffectiveScalar() float64 {
	if d.Scalar > 0 {
		return d.Scalar
	}
	return 1
}

// paramFP fingerprints literal parameters for signature identity.
func paramFP(params []value.V) string {
	if len(params) == 0 {
		return ""
	}
	parts := make([]string, len(params))
	for i, p := range params {
		parts[i] = p.String()
	}
	return strings.Join(parts, ",")
}

// Validate checks structural consistency at registration time.
func (d *Descriptor) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("udf: empty name")
	}
	switch d.Kind {
	case KindMap:
		if d.Map == nil {
			return fmt.Errorf("udf %s: KindMap without Map", d.Name)
		}
		if len(d.OutNames) == 0 && !d.Filters {
			return fmt.Errorf("udf %s: map UDF with no outputs and no filtering is a no-op", d.Name)
		}
	case KindAgg:
		if d.Reduce == nil {
			return fmt.Errorf("udf %s: KindAgg without Reduce", d.Name)
		}
		if len(d.KeyNames) == 0 {
			return fmt.Errorf("udf %s: KindAgg without key columns", d.Name)
		}
		if !d.DerivedKeys && len(d.KeyArgs) != len(d.KeyNames) {
			return fmt.Errorf("udf %s: KeyArgs/KeyNames length mismatch", d.Name)
		}
		for _, ka := range d.KeyArgs {
			if ka < 0 || ka >= d.NArgs {
				return fmt.Errorf("udf %s: KeyArgs index %d out of range", d.Name, ka)
			}
		}
	default:
		return fmt.Errorf("udf %s: unknown kind %d", d.Name, d.Kind)
	}
	if d.TrueScalar < 1 {
		return fmt.Errorf("udf %s: TrueScalar must be >= 1", d.Name)
	}
	if d.Kind == KindAgg && d.PreMap != nil && d.PayloadCols <= 0 {
		return fmt.Errorf("udf %s: custom PreMap requires PayloadCols", d.Name)
	}
	return nil
}

// PayloadWidth returns the per-tuple payload width the shuffle carries.
func (d *Descriptor) PayloadWidth() int {
	if d.PreMap != nil {
		return d.PayloadCols
	}
	return d.NArgs - len(d.KeyArgs)
}

// OutSig returns the signature of the named output attribute for an
// application with the given argument signatures and parameters.
func (d *Descriptor) OutSig(out string, argSigs []*afk.Sig, params []value.V, ctxF string) *afk.Sig {
	qual := d.Name + "#" + out
	if d.Kind == KindMap {
		return afk.DerivedSig(qual, paramFP(params), argSigs)
	}
	keySigs := d.keySigs(argSigs, params)
	// Aggregate inputs: the non-key arguments.
	var inputs []*afk.Sig
	isKeyArg := make(map[int]bool, len(d.KeyArgs))
	if !d.DerivedKeys {
		for _, ka := range d.KeyArgs {
			isKeyArg[ka] = true
		}
	}
	for i, s := range argSigs {
		if !isKeyArg[i] {
			inputs = append(inputs, s)
		}
	}
	if len(inputs) == 0 {
		inputs = argSigs
	}
	return afk.AggSig(qual, paramFP(params), inputs, ctxF, keySigs)
}

// KeySigs returns the signatures of the group-key output columns for an
// application with the given argument signatures and parameters. The
// rewriter uses it to reconstruct an application's grouping from a
// signature it must re-derive.
func (d *Descriptor) KeySigs(argSigs []*afk.Sig, params []value.V) []*afk.Sig {
	return d.keySigs(argSigs, params)
}

// keySigs returns the signatures of the group-key output columns.
func (d *Descriptor) keySigs(argSigs []*afk.Sig, params []value.V) []*afk.Sig {
	if d.DerivedKeys {
		sigs := make([]*afk.Sig, len(d.KeyNames))
		for i, kn := range d.KeyNames {
			sigs[i] = afk.DerivedSig(d.Name+"#"+kn, paramFP(params), argSigs)
		}
		return sigs
	}
	sigs := make([]*afk.Sig, len(d.KeyArgs))
	for i, ka := range d.KeyArgs {
		sigs[i] = argSigs[ka]
	}
	return sigs
}

// Annotate computes the output annotation of applying this UDF to an input
// annotated in, with argument columns argCols and parameters params. New
// derived attributes register functional dependencies in fds.
//
// KindMap keeps every input column and appends the outputs (queries project
// afterwards); KindAgg outputs exactly the key columns plus the aggregate
// outputs, re-keyed on the keys.
func (d *Descriptor) Annotate(in afk.Annotation, argCols []string, params []value.V, fds *afk.FDSet) (afk.Annotation, error) {
	if len(argCols) != d.NArgs {
		return afk.Annotation{}, fmt.Errorf("udf %s: got %d args, want %d", d.Name, len(argCols), d.NArgs)
	}
	if len(params) != d.NParams {
		return afk.Annotation{}, fmt.Errorf("udf %s: got %d params, want %d", d.Name, len(params), d.NParams)
	}
	argSigs := make([]*afk.Sig, len(argCols))
	for i, c := range argCols {
		s := in.SigOf(c)
		if s == nil {
			return afk.Annotation{}, fmt.Errorf("udf %s: argument column %q not in input %v", d.Name, c, in.Names())
		}
		argSigs[i] = s
	}
	argIDs := make([]string, len(argSigs))
	for i, s := range argSigs {
		argIDs[i] = s.ID()
	}

	switch d.Kind {
	case KindMap:
		out := in
		for _, on := range d.OutNames {
			sig := d.OutSig(on, argSigs, params, "")
			out = out.WithAttr(on, sig)
			fds.Add(argIDs, sig.ID())
		}
		if d.Filters {
			out = withOpaqueFilter(out, d.Name+"."+paramFP(params)+".filter", argIDs)
		}
		if d.Explode {
			rowSig := afk.DerivedSig(d.Name+"#_row", paramFP(params), argSigs)
			out = out.WithAttr("_"+strings.ToLower(d.Name)+"_row", rowSig)
			k := afk.NewSigSet(rowSig)
			// The exploded row key determines every output attribute.
			for _, at := range out.Attrs() {
				fds.Add([]string{rowSig.ID()}, at.Sig.ID())
			}
			out = out.Rekey(k, false)
		}
		return out, nil

	case KindAgg:
		ctxF := in.F.Canon()
		keySigs := d.keySigs(argSigs, params)
		keyAttrs := make([]afk.Attr, len(d.KeyNames))
		keyIDs := make([]string, len(keySigs))
		for i, kn := range d.KeyNames {
			keyAttrs[i] = afk.Attr{Name: kn, Sig: keySigs[i]}
			keyIDs[i] = keySigs[i].ID()
			if d.DerivedKeys {
				fds.Add(argIDs, keySigs[i].ID())
			}
		}
		aggAttrs := make([]afk.Attr, len(d.OutNames))
		for i, on := range d.OutNames {
			sig := d.OutSig(on, argSigs, params, ctxF)
			aggAttrs[i] = afk.Attr{Name: on, Sig: sig}
			fds.Add(keyIDs, sig.ID())
		}
		out := groupTo(in, keyAttrs, aggAttrs)
		if d.FiltersGroups {
			out = withOpaqueFilter(out, d.Name+"."+paramFP(params)+".gfilter", argIDs)
		}
		return out, nil
	}
	return afk.Annotation{}, fmt.Errorf("udf %s: unknown kind", d.Name)
}

// Registry holds the system's UDFs.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*Descriptor
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Descriptor)}
}

// Register validates and installs a descriptor. Re-registering a name
// replaces the previous descriptor.
func (r *Registry) Register(d *Descriptor) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if len(d.MapOps) == 0 {
		d.MapOps = defaultMapOps(d)
	}
	if len(d.ReduceOps) == 0 && d.Kind == KindAgg {
		d.ReduceOps = []cost.OpType{cost.OpGroup}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byName[d.Name] = d
	return nil
}

func defaultMapOps(d *Descriptor) []cost.OpType {
	var ops []cost.OpType
	if len(d.OutNames) > 0 || d.Kind == KindAgg {
		ops = append(ops, cost.OpAttr)
	}
	if d.Filters {
		ops = append(ops, cost.OpFilter)
	}
	return ops
}

// Get returns a descriptor by name.
func (r *Registry) Get(name string) (*Descriptor, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.byName[name]
	return d, ok
}

// Names returns all registered UDF names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ForOutput resolves a derived signature's qualified UDF name
// ("UDF_X#col") back to the descriptor and output column.
func (r *Registry) ForOutput(qualified string) (*Descriptor, string, bool) {
	i := strings.LastIndex(qualified, "#")
	if i < 0 {
		return nil, "", false
	}
	d, ok := r.Get(qualified[:i])
	if !ok {
		return nil, "", false
	}
	return d, qualified[i+1:], true
}

// --- small annotation helpers kept here to avoid widening afk's API ---

// withOpaqueFilter records an opaque user-code predicate in F.
func withOpaqueFilter(a afk.Annotation, name string, argIDs []string) afk.Annotation {
	out := a.Clone()
	out.F = out.F.Clone().Add(expr.NewOpaque(name, argIDs...))
	return out
}

// groupTo re-keys via the annotation algebra using attribute names already
// present (keys) plus new aggregate attributes.
func groupTo(in afk.Annotation, keyAttrs, aggAttrs []afk.Attr) afk.Annotation {
	// Keys that are existing columns group directly; derived keys are added
	// first so GroupBy can reference them by name.
	work := in
	keyNames := make([]string, len(keyAttrs))
	for i, ka := range keyAttrs {
		keyNames[i] = ka.Name
		if work.SigOf(ka.Name) == nil {
			work = work.WithAttr(ka.Name, ka.Sig)
		} else if work.SigOf(ka.Name).ID() != ka.Sig.ID() {
			// The key output name collides with a different input column:
			// rebind under the new name.
			work = work.WithAttr(ka.Name+"_key", ka.Sig)
			keyNames[i] = ka.Name + "_key"
		}
	}
	out := work.GroupBy(keyNames, aggAttrs)
	// Restore intended key names.
	for i, ka := range keyAttrs {
		if keyNames[i] != ka.Name {
			out = out.Rename(keyNames[i], ka.Name)
		}
	}
	return out
}
