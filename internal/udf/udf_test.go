package udf

import (
	"strings"
	"testing"

	"opportune/internal/afk"
	"opportune/internal/cost"
	"opportune/internal/expr"
	"opportune/internal/value"
)

// sentimentUDF: per-tuple classifier adding a score column.
func sentimentUDF() *Descriptor {
	return &Descriptor{
		Name: "UDF_SENT", NArgs: 1, NParams: 0,
		Kind:     KindMap,
		OutNames: []string{"score"},
		Map: func(args, _ []value.V) [][]value.V {
			n := float64(strings.Count(args[0].Str(), "good"))
			return [][]value.V{{value.NewFloat(n)}}
		},
		TrueScalar: 20,
	}
}

// pairsUDF: aggregate with derived keys (user communication pairs).
func pairsUDF() *Descriptor {
	return &Descriptor{
		Name: "UDF_PAIRS", NArgs: 2, NParams: 0,
		Kind:        KindAgg,
		KeyNames:    []string{"u1", "u2"},
		DerivedKeys: true,
		PreMap: func(args, _ []value.V) ([]value.V, []value.V, bool) {
			if args[1].IsNull() {
				return nil, nil, false
			}
			return []value.V{args[0], args[1]}, []value.V{value.NewInt(1)}, true
		},
		PayloadCols: 1,
		OutNames:    []string{"strength"},
		Reduce: func(_ []value.V, payloads [][]value.V, _ []value.V) []value.V {
			return []value.V{value.NewInt(int64(len(payloads)))}
		},
		TrueScalar: 5,
	}
}

// sumUDF: aggregate keyed by a passthrough argument.
func sumUDF() *Descriptor {
	return &Descriptor{
		Name: "UDF_SUM", NArgs: 2, NParams: 0,
		Kind:     KindAgg,
		KeyNames: []string{"user_id"},
		KeyArgs:  []int{0},
		OutNames: []string{"total"},
		Reduce: func(_ []value.V, payloads [][]value.V, _ []value.V) []value.V {
			var s float64
			for _, p := range payloads {
				s += p[0].Float()
			}
			return []value.V{value.NewFloat(s)}
		},
		TrueScalar: 1,
	}
}

func twtr() afk.Annotation {
	return afk.NewBase("twtr", []string{"tweet_id", "user_id", "text", "reply_to"}, "tweet_id")
}

func TestValidate(t *testing.T) {
	bad := []*Descriptor{
		{Name: "", Kind: KindMap, Map: func(_, _ []value.V) [][]value.V { return nil }, TrueScalar: 1},
		{Name: "X", Kind: KindMap, TrueScalar: 1},                                                                                 // no Map
		{Name: "X", Kind: KindMap, Map: func(_, _ []value.V) [][]value.V { return nil }, TrueScalar: 1},                           // no outs, no filter
		{Name: "X", Kind: KindAgg, TrueScalar: 1},                                                                                 // no Reduce
		{Name: "X", Kind: KindAgg, Reduce: func(_ []value.V, _ [][]value.V, _ []value.V) []value.V { return nil }, TrueScalar: 1}, // no keys
		{Name: "X", Kind: KindAgg, KeyNames: []string{"k"}, KeyArgs: []int{5}, NArgs: 1,
			Reduce: func(_ []value.V, _ [][]value.V, _ []value.V) []value.V { return nil }, TrueScalar: 1}, // bad key index
		{Name: "X", Kind: Kind(9), TrueScalar: 1},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad descriptor %d validated", i)
		}
	}
	s := sentimentUDF()
	s.TrueScalar = 0.5
	if err := s.Validate(); err == nil {
		t.Error("TrueScalar < 1 validated")
	}
	if err := sentimentUDF().Validate(); err != nil {
		t.Errorf("good map UDF rejected: %v", err)
	}
	if err := pairsUDF().Validate(); err != nil {
		t.Errorf("good agg UDF rejected: %v", err)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(sentimentUDF()); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(pairsUDF()); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("UDF_SENT"); !ok {
		t.Error("Get failed")
	}
	if _, ok := r.Get("NOPE"); ok {
		t.Error("Get found missing")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "UDF_PAIRS" {
		t.Errorf("Names = %v", names)
	}
	if err := r.Register(&Descriptor{Name: "bad", Kind: KindMap, TrueScalar: 1}); err == nil {
		t.Error("invalid descriptor registered")
	}
	// defaults filled in
	d, _ := r.Get("UDF_SENT")
	if len(d.MapOps) == 0 {
		t.Error("MapOps not defaulted")
	}
	d2, _ := r.Get("UDF_PAIRS")
	if len(d2.ReduceOps) == 0 {
		t.Error("ReduceOps not defaulted")
	}
}

func TestForOutput(t *testing.T) {
	r := NewRegistry()
	r.Register(sentimentUDF())
	d, out, ok := r.ForOutput("UDF_SENT#score")
	if !ok || d.Name != "UDF_SENT" || out != "score" {
		t.Errorf("ForOutput = %v %q %v", d, out, ok)
	}
	if _, _, ok := r.ForOutput("UDF_SENT"); ok {
		t.Error("unqualified name resolved")
	}
	if _, _, ok := r.ForOutput("MISSING#x"); ok {
		t.Error("missing UDF resolved")
	}
}

func TestAnnotateMapUDF(t *testing.T) {
	fds := afk.NewFDSet()
	in := twtr()
	out, err := sentimentUDF().Annotate(in, []string{"text"}, nil, fds)
	if err != nil {
		t.Fatal(err)
	}
	// all input columns kept + score
	if len(out.Names()) != 5 {
		t.Errorf("out names = %v", out.Names())
	}
	s := out.SigOf("score")
	if s == nil || s.IsBase() || s.UDF != "UDF_SENT#score" {
		t.Errorf("score sig = %v", s)
	}
	// FD registered: text -> score
	if !fds.Determines([]string{in.MustSig("text").ID()}, s.ID()) {
		t.Error("FD not registered")
	}
	// K unchanged
	if !out.K.Equal(in.K) {
		t.Error("map UDF changed keys")
	}
	// same application → same signature
	out2, _ := sentimentUDF().Annotate(in, []string{"text"}, nil, afk.NewFDSet())
	if out2.SigOf("score").ID() != s.ID() {
		t.Error("signatures not stable")
	}
}

func TestAnnotateMapUDFErrors(t *testing.T) {
	d := sentimentUDF()
	in := twtr()
	if _, err := d.Annotate(in, []string{"text", "extra"}, nil, afk.NewFDSet()); err == nil {
		t.Error("wrong arg count accepted")
	}
	if _, err := d.Annotate(in, []string{"missing"}, nil, afk.NewFDSet()); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := d.Annotate(in, []string{"text"}, []value.V{value.NewInt(1)}, afk.NewFDSet()); err == nil {
		t.Error("wrong param count accepted")
	}
}

func TestAnnotateFilteringMapUDF(t *testing.T) {
	d := &Descriptor{
		Name: "UDF_NEAR", NArgs: 2, NParams: 1,
		Kind:    KindMap,
		Filters: true,
		Map: func(args, params []value.V) [][]value.V {
			if args[0].Float() < params[0].Float() {
				return [][]value.V{{}}
			}
			return nil
		},
		TrueScalar: 2,
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	in := afk.NewBase("land", []string{"lat", "lon"}, "")
	out, err := d.Annotate(in, []string{"lat", "lon"}, []value.V{value.NewFloat(1)}, afk.NewFDSet())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.F) != 1 {
		t.Fatalf("F = %v", out.F)
	}
	for _, p := range out.F {
		if p.Kind != expr.KindOpaque {
			t.Errorf("filter pred kind = %v", p.Kind)
		}
		if !strings.Contains(p.Name, "UDF_NEAR") {
			t.Errorf("filter name = %q", p.Name)
		}
	}
	// different params → different opaque predicate
	out2, _ := d.Annotate(in, []string{"lat", "lon"}, []value.V{value.NewFloat(2)}, afk.NewFDSet())
	if out.F.Equal(out2.F) {
		t.Error("different params, same opaque filter")
	}
}

func TestAnnotateExplodingUDF(t *testing.T) {
	d := &Descriptor{
		Name: "UDF_TOKENIZE", NArgs: 1, NParams: 0,
		Kind:     KindMap,
		OutNames: []string{"sentence"},
		Explode:  true,
		Map: func(args, _ []value.V) [][]value.V {
			var out [][]value.V
			for _, s := range strings.Split(args[0].Str(), ".") {
				out = append(out, []value.V{value.NewStr(s)})
			}
			return out
		},
		TrueScalar: 3,
	}
	in := twtr()
	fds := afk.NewFDSet()
	out, err := d.Annotate(in, []string{"text"}, nil, fds)
	if err != nil {
		t.Fatal(err)
	}
	// re-keyed on a derived row signature, still record-level
	if out.Grouped {
		t.Error("exploded output marked grouped")
	}
	if out.K.Equal(in.K) {
		t.Error("exploded output kept input keys")
	}
	if len(out.K) != 1 {
		t.Errorf("K = %s", out.K.Canon())
	}
	// the row key determines the payload columns
	var rowKeyID string
	for id := range out.K {
		rowKeyID = id
	}
	if !fds.Determines([]string{rowKeyID}, out.MustSig("sentence").ID()) {
		t.Error("row key FD missing")
	}
}

func TestAnnotateAggUDFPassthroughKeys(t *testing.T) {
	fds := afk.NewFDSet()
	in := twtr()
	out, err := sumUDF().Annotate(in, []string{"user_id", "text"}, nil, fds)
	if err != nil {
		t.Fatal(err)
	}
	// exactly key + aggregate
	if got := out.Names(); len(got) != 2 {
		t.Errorf("out = %v", got)
	}
	if !out.Grouped {
		t.Error("agg output not grouped")
	}
	if !out.K.Equal(afk.NewSigSet(in.MustSig("user_id"))) {
		t.Errorf("K = %s", out.K.Canon())
	}
	tot := out.MustSig("total")
	if !tot.Agg {
		t.Error("aggregate sig not marked Agg")
	}
	// filter context captured: same UDF over filtered input differs
	filtered := in.WithFilter(expr.NewCmp("user_id", expr.Gt, value.NewInt(10)))
	out2, _ := sumUDF().Annotate(filtered, []string{"user_id", "text"}, nil, fds)
	if out2.MustSig("total").ID() == tot.ID() {
		t.Error("aggregate identity ignores filter context")
	}
	// key FD: user_id -> total
	if !fds.Determines([]string{in.MustSig("user_id").ID()}, tot.ID()) {
		t.Error("key FD missing")
	}
}

func TestAnnotateAggUDFDerivedKeys(t *testing.T) {
	fds := afk.NewFDSet()
	in := twtr()
	out, err := pairsUDF().Annotate(in, []string{"user_id", "reply_to"}, nil, fds)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Names(); len(got) != 3 { // u1, u2, strength
		t.Errorf("out = %v", got)
	}
	u1 := out.MustSig("u1")
	if u1.IsBase() || u1.UDF != "UDF_PAIRS#u1" {
		t.Errorf("derived key sig = %v", u1)
	}
	if !out.K.HasID(u1.ID()) || len(out.K) != 2 {
		t.Errorf("K = %s", out.K.Canon())
	}
}

func TestAnnotateAggKeyNameCollision(t *testing.T) {
	// Derived key whose output name collides with an existing input column.
	d := pairsUDF()
	d.KeyNames = []string{"user_id", "u2"} // "user_id" collides with input col
	fds := afk.NewFDSet()
	out, err := d.Annotate(twtr(), []string{"user_id", "reply_to"}, nil, fds)
	if err != nil {
		t.Fatal(err)
	}
	// the output key named user_id must be the derived sig, not the base col
	s := out.MustSig("user_id")
	if s.IsBase() {
		t.Error("collided key name bound to base column")
	}
}

func TestEffectiveScalar(t *testing.T) {
	d := sentimentUDF()
	if d.EffectiveScalar() != 1 {
		t.Error("uncalibrated scalar != 1")
	}
	d.Scalar = 7
	if d.EffectiveScalar() != 7 {
		t.Error("calibrated scalar ignored")
	}
}

func TestOutSigKeyArgExclusion(t *testing.T) {
	in := twtr()
	d := sumUDF()
	args := []*afk.Sig{in.MustSig("user_id"), in.MustSig("text")}
	s := d.OutSig("total", args, nil, "{}")
	// inputs should exclude the key arg (user_id)
	if len(s.Inputs) != 1 || s.Inputs[0].ID() != in.MustSig("text").ID() {
		t.Errorf("agg inputs = %v", s.Inputs)
	}
	if len(s.GroupBy) != 1 || s.GroupBy[0].ID() != in.MustSig("user_id").ID() {
		t.Errorf("agg groupby = %v", s.GroupBy)
	}
	// cheap op defaulting
	if ops := defaultMapOps(d); len(ops) != 1 || ops[0] != cost.OpAttr {
		t.Errorf("default ops = %v", ops)
	}
}
