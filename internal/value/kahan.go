package value

import "math"

// Kahan is a Neumaier-compensated float64 accumulator. Add tracks the
// rounding error of every addition in a correction term and Value folds it
// back in, so an n-term sum lands within 1 ulp of the exactly rounded
// result even under magnitude cancellation — versus O(n) ulps of drift for
// a naive left fold. SUM/AVG partial-state merges and incremental SUM
// maintenance both fold through this so that long append chains stay
// ULP-close to a full recompute.
type Kahan struct {
	sum float64
	c   float64
}

// Add folds x into the accumulator.
func (k *Kahan) Add(x float64) {
	t := k.sum + x
	if math.Abs(k.sum) >= math.Abs(x) {
		k.c += (k.sum - t) + x
	} else {
		k.c += (x - t) + k.sum
	}
	k.sum = t
}

// Value returns the compensated total.
func (k *Kahan) Value() float64 { return k.sum + k.c }
