// Package value defines the scalar value model used throughout the system.
//
// Rows flowing through the MapReduce engine are vectors of Values. Values
// are small immutable structs (no interface boxing) with deterministic
// ordering, hashing, and a wire encoding whose length feeds the byte
// accounting that the cost model and the storage layer rely on.
package value

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the scalar types supported by the engine.
type Kind uint8

const (
	// Null is the zero Kind: an absent value (logs are dirty; many
	// attributes, e.g. tweet geo coordinates, can be missing).
	Null Kind = iota
	// Int is a 64-bit signed integer.
	Int
	// Float is a 64-bit IEEE float.
	Float
	// Str is a UTF-8 string.
	Str
	// Bool is a boolean.
	Bool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case Null:
		return "null"
	case Int:
		return "int"
	case Float:
		return "float"
	case Str:
		return "string"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// V is a single scalar value. The zero V is Null.
type V struct {
	kind Kind
	i    int64 // Int payload; Bool uses 0/1
	f    float64
	s    string
}

// NullV is the null value.
var NullV = V{}

// NewInt returns an Int value.
func NewInt(i int64) V { return V{kind: Int, i: i} }

// NewFloat returns a Float value.
func NewFloat(f float64) V { return V{kind: Float, f: f} }

// NewStr returns a Str value.
func NewStr(s string) V { return V{kind: Str, s: s} }

// NewBool returns a Bool value.
func NewBool(b bool) V {
	var i int64
	if b {
		i = 1
	}
	return V{kind: Bool, i: i}
}

// Kind reports the value's kind.
func (v V) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v V) IsNull() bool { return v.kind == Null }

// Int returns the integer payload. It panics on kind mismatch; use it only
// after checking Kind.
func (v V) Int() int64 {
	if v.kind != Int && v.kind != Bool {
		panic("value: Int() on " + v.kind.String())
	}
	return v.i
}

// Float returns the numeric payload widened to float64. Valid for Int and
// Float values.
func (v V) Float() float64 {
	switch v.kind {
	case Float:
		return v.f
	case Int, Bool:
		return float64(v.i)
	default:
		panic("value: Float() on " + v.kind.String())
	}
}

// Str returns the string payload. It panics on kind mismatch.
func (v V) Str() string {
	if v.kind != Str {
		panic("value: Str() on " + v.kind.String())
	}
	return v.s
}

// Bool returns the boolean payload. It panics on kind mismatch.
func (v V) Bool() bool {
	if v.kind != Bool {
		panic("value: Bool() on " + v.kind.String())
	}
	return v.i != 0
}

// IsNumeric reports whether the value is Int or Float.
func (v V) IsNumeric() bool { return v.kind == Int || v.kind == Float }

// Compare orders two values. Nulls sort first; numeric kinds compare by
// numeric value across Int/Float; otherwise values of different kinds order
// by kind. Returns -1, 0, or +1.
func Compare(a, b V) int {
	if a.kind == Null || b.kind == Null {
		switch {
		case a.kind == Null && b.kind == Null:
			return 0
		case a.kind == Null:
			return -1
		default:
			return 1
		}
	}
	if a.IsNumeric() && b.IsNumeric() {
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case Str:
		return strings.Compare(a.s, b.s)
	case Bool:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

// Equal reports whether two values compare equal under Compare.
func Equal(a, b V) bool { return Compare(a, b) == 0 }

// Hash returns a deterministic 64-bit hash of the value, consistent with
// Equal for same-kind values.
func (v V) Hash() uint64 {
	h := fnv.New64a()
	var buf [9]byte
	buf[0] = byte(v.kind)
	switch v.kind {
	case Int, Bool:
		putUint64(buf[1:], uint64(v.i))
		h.Write(buf[:])
	case Float:
		putUint64(buf[1:], math.Float64bits(v.f))
		h.Write(buf[:])
	case Str:
		h.Write(buf[:1])
		h.Write([]byte(v.s))
	default:
		h.Write(buf[:1])
	}
	return h.Sum64()
}

func putUint64(b []byte, u uint64) {
	_ = b[7]
	b[0] = byte(u)
	b[1] = byte(u >> 8)
	b[2] = byte(u >> 16)
	b[3] = byte(u >> 24)
	b[4] = byte(u >> 32)
	b[5] = byte(u >> 40)
	b[6] = byte(u >> 48)
	b[7] = byte(u >> 56)
}

// AppendKey appends the value's canonical key encoding to b and returns the
// extended slice: a 1-byte kind tag, then a fixed-width payload (Int/Bool as
// 8 little-endian bytes, Float as its IEEE bits) or, for strings, a 4-byte
// little-endian length prefix followed by the bytes. The encoding is
// injective — two values encode identically iff they are identical — and
// prefix-free per column, so multi-column keys built by concatenation never
// collide across column boundaries.
func (v V) AppendKey(b []byte) []byte {
	b = append(b, byte(v.kind))
	switch v.kind {
	case Int, Bool:
		var p [8]byte
		putUint64(p[:], uint64(v.i))
		return append(b, p[:]...)
	case Float:
		var p [8]byte
		putUint64(p[:], math.Float64bits(v.f))
		return append(b, p[:]...)
	case Str:
		var p [4]byte
		n := uint32(len(v.s))
		p[0], p[1], p[2], p[3] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
		return append(append(b, p[:]...), v.s...)
	default:
		return b
	}
}

// EncodedSize returns the number of bytes the value occupies in the
// simulated on-disk representation: a 1-byte kind tag plus the payload.
// This is the unit the storage layer and cost model account in.
func (v V) EncodedSize() int {
	switch v.kind {
	case Null:
		return 1
	case Int, Float:
		return 9
	case Bool:
		return 2
	case Str:
		return 1 + 4 + len(v.s)
	default:
		return 1
	}
}

// String renders the value for display and for canonical forms (predicates,
// signatures). Floats use the shortest round-trip representation.
func (v V) String() string {
	switch v.kind {
	case Null:
		return "NULL"
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Float:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case Str:
		return v.s
	case Bool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Parse converts a literal string to a value: integers, floats, true/false,
// NULL, otherwise a string.
func Parse(s string) V {
	switch s {
	case "NULL", "null":
		return NullV
	case "true":
		return NewBool(true)
	case "false":
		return NewBool(false)
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return NewInt(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return NewFloat(f)
	}
	return NewStr(s)
}
