package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Null: "null", Int: "int", Float: "float", Str: "string", Bool: "bool",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := NewInt(42); v.Kind() != Int || v.Int() != 42 {
		t.Errorf("NewInt roundtrip failed: %v", v)
	}
	if v := NewFloat(2.5); v.Kind() != Float || v.Float() != 2.5 {
		t.Errorf("NewFloat roundtrip failed: %v", v)
	}
	if v := NewStr("hi"); v.Kind() != Str || v.Str() != "hi" {
		t.Errorf("NewStr roundtrip failed: %v", v)
	}
	if v := NewBool(true); v.Kind() != Bool || !v.Bool() {
		t.Errorf("NewBool(true) roundtrip failed: %v", v)
	}
	if v := NewBool(false); v.Bool() {
		t.Errorf("NewBool(false) roundtrip failed: %v", v)
	}
	if !NullV.IsNull() || NullV.Kind() != Null {
		t.Error("NullV is not null")
	}
	if NewInt(1).IsNull() {
		t.Error("NewInt(1).IsNull() = true")
	}
}

func TestFloatWidening(t *testing.T) {
	if got := NewInt(3).Float(); got != 3.0 {
		t.Errorf("NewInt(3).Float() = %v", got)
	}
	if got := NewBool(true).Float(); got != 1.0 {
		t.Errorf("NewBool(true).Float() = %v", got)
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Str.Int", func() { NewStr("x").Int() })
	mustPanic("Str.Float", func() { NewStr("x").Float() })
	mustPanic("Int.Str", func() { NewInt(1).Str() })
	mustPanic("Int.Bool", func() { NewInt(1).Bool() })
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b V
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewInt(2), -1},
		{NewInt(2), NewFloat(2.0), 0},
		{NewStr("a"), NewStr("b"), -1},
		{NewStr("b"), NewStr("b"), 0},
		{NullV, NewInt(0), -1},
		{NewInt(0), NullV, 1},
		{NullV, NullV, 0},
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewBool(true), 0},
		// cross-kind non-numeric: orders by kind
		{NewFloat(1), NewStr("a"), -1},
	}
	for _, tc := range tests {
		if got := Compare(tc.a, tc.b); got != tc.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestEqualHashConsistency(t *testing.T) {
	pairs := [][2]V{
		{NewInt(7), NewInt(7)},
		{NewStr("abc"), NewStr("abc")},
		{NewBool(true), NewBool(true)},
		{NullV, NullV},
		{NewFloat(1.25), NewFloat(1.25)},
	}
	for _, p := range pairs {
		if !Equal(p[0], p[1]) {
			t.Errorf("Equal(%v,%v) = false", p[0], p[1])
		}
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("hash mismatch for equal values %v", p[0])
		}
	}
	if NewInt(1).Hash() == NewInt(2).Hash() {
		t.Error("distinct ints hash equal (suspicious)")
	}
	if NewStr("a").Hash() == NewStr("b").Hash() {
		t.Error("distinct strings hash equal (suspicious)")
	}
}

func TestEncodedSize(t *testing.T) {
	tests := []struct {
		v    V
		want int
	}{
		{NullV, 1},
		{NewInt(5), 9},
		{NewFloat(5), 9},
		{NewBool(true), 2},
		{NewStr("abcd"), 1 + 4 + 4},
		{NewStr(""), 5},
	}
	for _, tc := range tests {
		if got := tc.v.EncodedSize(); got != tc.want {
			t.Errorf("EncodedSize(%v) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestStringAndParseRoundTrip(t *testing.T) {
	vals := []V{NewInt(-3), NewFloat(2.5), NewStr("hello"), NewBool(true), NewBool(false), NullV}
	for _, v := range vals {
		got := Parse(v.String())
		if !Equal(got, v) {
			t.Errorf("Parse(String(%v)) = %v", v, got)
		}
	}
	// Strings that look numeric parse as numbers; that is intended.
	if Parse("10").Kind() != Int {
		t.Error(`Parse("10") not Int`)
	}
	if Parse("1.5").Kind() != Float {
		t.Error(`Parse("1.5") not Float`)
	}
	if Parse("NULL").Kind() != Null {
		t.Error(`Parse("NULL") not Null`)
	}
}

func TestCompareTotalOrderProperties(t *testing.T) {
	// Property: Compare is antisymmetric and consistent with Equal for
	// arbitrary int/float/string triples.
	f := func(ai int64, bf float64, s string) bool {
		vs := []V{NewInt(ai), NewFloat(bf), NewStr(s), NullV, NewBool(ai%2 == 0)}
		for _, a := range vs {
			for _, b := range vs {
				if Compare(a, b) != -Compare(b, a) {
					return false
				}
				if (Compare(a, b) == 0) != Equal(a, b) {
					return false
				}
			}
			if Compare(a, a) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitivityProperty(t *testing.T) {
	f := func(a, b, c float64, x, y, z int64) bool {
		vs := []V{NewFloat(a), NewFloat(b), NewFloat(c), NewInt(x), NewInt(y), NewInt(z)}
		for _, p := range vs {
			for _, q := range vs {
				for _, r := range vs {
					if Compare(p, q) <= 0 && Compare(q, r) <= 0 && Compare(p, r) > 0 {
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFloatSpecials(t *testing.T) {
	inf := NewFloat(math.Inf(1))
	if Compare(inf, NewFloat(1e300)) != 1 {
		t.Error("+inf should be greater than 1e300")
	}
	if inf.EncodedSize() != 9 {
		t.Error("inf size")
	}
}
