// Package workload reproduces the experimental workload of §8 / [16]:
// three synthetic real-world-shaped logs (Twitter, Foursquare, Landmarks),
// ten MR UDFs modeled per §3, and the 32 exploratory queries of analysts
// A1–A8, each in four successively revised versions, written in the
// system's HiveQL dialect.
//
// The generators substitute for the paper's 1TB+ production logs (see
// DESIGN.md): same schemas, same join keys (user_id across TWTR/4SQ,
// location_id across 4SQ/LAND), topical text with per-user affinities so
// classifier UDFs produce skewed scores, and missing values (most tweets
// carry no geo coordinates — §10 notes queries discard such rows).
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"opportune/internal/cost"
	"opportune/internal/data"
	"opportune/internal/session"
	"opportune/internal/storage"
	"opportune/internal/value"
)

// Scale sizes the synthetic logs. The paper's ratio is 800GB TWTR : 250GB
// 4SQ : 7GB LAND; defaults keep the same ordering at laptop scale.
type Scale struct {
	Tweets    int
	Checkins  int
	Landmarks int
	Users     int
	Seed      int64
}

// SmallScale is used by unit tests.
func SmallScale() Scale {
	return Scale{Tweets: 2000, Checkins: 700, Landmarks: 120, Users: 80, Seed: 42}
}

// DefaultScale is used by the experiment harness.
func DefaultScale() Scale {
	return Scale{Tweets: 20000, Checkins: 7000, Landmarks: 600, Users: 400, Seed: 42}
}

// Topic vocabularies. Sentiment words modulate classifier scores.
var (
	wineWords   = []string{"wine", "merlot", "vineyard", "cabernet", "tannins", "pinot", "sommelier"}
	foodWords   = []string{"food", "dinner", "pasta", "sushi", "ramen", "brunch", "dessert", "taco"}
	coffeeWords = []string{"coffee", "espresso", "latte", "roast", "barista"}
	travelWords = []string{"travel", "flight", "resort", "yacht", "firstclass", "suite"}
	sportWords  = []string{"game", "match", "score", "team", "season"}
	posWords    = []string{"love", "great", "amazing", "excellent", "enjoy", "perfect"}
	negWords    = []string{"bad", "awful", "terrible", "hate", "boring"}
	fillWords   = []string{"the", "today", "about", "going", "just", "with", "really", "some", "now", "then"}

	topics = [][]string{wineWords, foodWords, coffeeWords, travelWords, sportWords}

	// landCategories includes the categories the queries filter on.
	landCategories = []string{"wine_bar", "restaurant", "cafe", "museum", "park"}
	menuDishes     = []string{"pasta", "pizza", "sushi", "ramen", "steak", "taco", "salad", "soup", "burger", "curry", "dumpling", "paella"}
)

// Datasets holds the generated relations.
type Datasets struct {
	TWTR *data.Relation
	FSQ  *data.Relation
	LAND *data.Relation
}

// Generate builds the three logs deterministically from the scale's seed.
func Generate(sc Scale) *Datasets {
	rng := rand.New(rand.NewSource(sc.Seed))
	if sc.Users <= 0 {
		sc.Users = sc.Tweets/20 + 1
	}

	// Per-user topical affinity and positivity.
	type userProfile struct {
		topic    int
		positive float64 // probability a sentiment word is positive
		social   float64 // probability of replying
	}
	users := make([]userProfile, sc.Users)
	for u := range users {
		users[u] = userProfile{
			topic:    rng.Intn(len(topics)),
			positive: 0.2 + 0.8*rng.Float64(),
			social:   rng.Float64() * 0.6,
		}
	}

	land := data.NewRelation(data.NewSchema("location_id", "name", "category", "lat", "lon", "menu"))
	for i := 0; i < sc.Landmarks; i++ {
		cat := landCategories[rng.Intn(len(landCategories))]
		menu := ""
		if cat == "restaurant" || cat == "cafe" || cat == "wine_bar" {
			n := 3 + rng.Intn(5)
			dishes := make([]string, n)
			for j := range dishes {
				dishes[j] = menuDishes[rng.Intn(len(menuDishes))]
			}
			menu = strings.Join(dishes, " ")
		}
		land.Append(data.Row{
			value.NewInt(int64(i)),
			value.NewStr(fmt.Sprintf("%s_%d", cat, i)),
			value.NewStr(cat),
			value.NewFloat(37 + rng.Float64()*2),
			value.NewFloat(-122 + rng.Float64()*2),
			value.NewStr(menu),
		})
	}

	twtr := data.NewRelation(data.NewSchema("tweet_id", "user_id", "ts", "text", "lat", "lon", "reply_to"))
	for i := 0; i < sc.Tweets; i++ {
		u := rng.Intn(sc.Users)
		p := users[u]
		text := genText(rng, p.topic, p.positive)
		lat, lon := value.NullV, value.NullV
		if rng.Float64() < 0.35 { // most tweets have no geo (dirty logs, §10)
			lat = value.NewFloat(37 + rng.Float64()*2)
			lon = value.NewFloat(-122 + rng.Float64()*2)
		}
		reply := value.NullV
		if rng.Float64() < p.social {
			// replies skew toward low user ids ("popular" users)
			target := rng.Intn(rng.Intn(sc.Users/4+1) + 1)
			if target != u {
				reply = value.NewInt(int64(target))
			}
		}
		twtr.Append(data.Row{
			value.NewInt(int64(i)),
			value.NewInt(int64(u)),
			value.NewInt(int64(1600000000 + i*13)),
			value.NewStr(text),
			lat, lon, reply,
		})
	}

	fsq := data.NewRelation(data.NewSchema("checkin_id", "user_id", "location_id", "ts"))
	for i := 0; i < sc.Checkins; i++ {
		u := rng.Intn(sc.Users)
		// users check in near their topical interests: wine lovers go to
		// wine bars more often etc. (keeps query results non-trivial)
		loc := rng.Intn(max(sc.Landmarks, 1))
		fsq.Append(data.Row{
			value.NewInt(int64(i)),
			value.NewInt(int64(u)),
			value.NewInt(int64(loc)),
			value.NewInt(int64(1600000000 + i*29)),
		})
	}
	return &Datasets{TWTR: twtr, FSQ: fsq, LAND: land}
}

// genText produces a 1-3 sentence tweet biased to the user's topic and
// positivity.
func genText(rng *rand.Rand, topic int, positive float64) string {
	nSent := 1 + rng.Intn(3)
	var sents []string
	for s := 0; s < nSent; s++ {
		n := 4 + rng.Intn(8)
		words := make([]string, 0, n)
		for w := 0; w < n; w++ {
			switch r := rng.Float64(); {
			case r < 0.30:
				words = append(words, topics[topic][rng.Intn(len(topics[topic]))])
			case r < 0.38:
				other := topics[rng.Intn(len(topics))]
				words = append(words, other[rng.Intn(len(other))])
			case r < 0.55:
				if rng.Float64() < positive {
					words = append(words, posWords[rng.Intn(len(posWords))])
				} else {
					words = append(words, negWords[rng.Intn(len(negWords))])
				}
			default:
				words = append(words, fillWords[rng.Intn(len(fillWords))])
			}
		}
		sents = append(sents, strings.Join(words, " "))
	}
	return strings.Join(sents, ". ")
}

// Install loads the datasets into a session: base data in the store,
// schemas/stats/FDs in the catalog, and the full UDF library registered and
// calibrated.
func Install(s *session.Session, sc Scale) (*Datasets, error) {
	ds := Generate(sc)
	s.Store.Put("twtr", storage.Base, ds.TWTR)
	s.Store.Put("fsq", storage.Base, ds.FSQ)
	s.Store.Put("land", storage.Base, ds.LAND)

	s.Cat.RegisterBase("twtr", ds.TWTR.Schema().Cols(), "tweet_id",
		cost.Stats{Rows: int64(ds.TWTR.Len()), Bytes: ds.TWTR.EncodedSize()},
		map[string]int64{
			"tweet_id": int64(ds.TWTR.Len()),
			"user_id":  int64(sc.Users),
			"reply_to": int64(sc.Users / 4),
		})
	s.Cat.RegisterBase("fsq", ds.FSQ.Schema().Cols(), "checkin_id",
		cost.Stats{Rows: int64(ds.FSQ.Len()), Bytes: ds.FSQ.EncodedSize()},
		map[string]int64{
			"checkin_id":  int64(ds.FSQ.Len()),
			"user_id":     int64(sc.Users),
			"location_id": int64(sc.Landmarks),
		})
	s.Cat.RegisterBase("land", ds.LAND.Schema().Cols(), "location_id",
		cost.Stats{Rows: int64(ds.LAND.Len()), Bytes: ds.LAND.EncodedSize()},
		map[string]int64{
			"location_id": int64(sc.Landmarks),
			"category":    int64(len(landCategories)),
		})

	if err := RegisterUDFs(s); err != nil {
		return nil, err
	}
	return ds, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
