package workload

import (
	"testing"

	"opportune/internal/session"
)

// TestQueryEvolutionCorrectness runs each analyst's session with BFREWRITE
// enabled (v1..v4 in order, views accumulating) and checks every result
// against a rewrite-free reference system. This is the end-to-end
// correctness guarantee behind Fig 7: rewrites must be equivalent, not just
// fast.
func TestQueryEvolutionCorrectness(t *testing.T) {
	if testing.Short() {
		t.Skip("evolution correctness is slow")
	}
	ref, err := NewSession(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	for a := 1; a <= 8; a++ {
		sys, err := NewSession(SmallScale())
		if err != nil {
			t.Fatal(err)
		}
		improvedSomewhere := false
		for v := 1; v <= 4; v++ {
			q := QueryFor(a, v)
			m, err := Exec(sys, q, session.ModeBFR)
			if err != nil {
				t.Fatalf("A%dv%d BFR: %v", a, v, err)
			}
			if m.Rewrite != nil && m.Rewrite.Improved {
				improvedSomewhere = true
			}
			// reference
			refQ := q
			refQ.SQL = q.SQL // same statement, fresh views dropped below
			ref.DropViews()
			if _, err := Exec(ref, refQ, session.ModeOriginal); err != nil {
				t.Fatalf("A%dv%d reference: %v", a, v, err)
			}
			got, err := sys.Store.Read(m.ResultName)
			if err != nil {
				t.Fatalf("A%dv%d result: %v", a, v, err)
			}
			want, err := ref.Store.Read(q.Name)
			if err != nil {
				t.Fatalf("A%dv%d ref result: %v", a, v, err)
			}
			if got.Fingerprint() != want.Fingerprint() {
				t.Errorf("A%dv%d: rewritten result differs from original (got %d rows, want %d)",
					a, v, got.Len(), want.Len())
			}
		}
		if !improvedSomewhere {
			t.Errorf("analyst %d: no version benefited from rewriting", a)
		}
	}
}

// TestQueryEvolutionSpeedup checks the Fig 7 shape at test scale: across
// all analysts, v2–v4 under BFR must on average be substantially faster
// than their original runs.
func TestQueryEvolutionSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("evolution speedup is slow")
	}
	var sumOrig, sumRewr float64
	for a := 1; a <= 8; a++ {
		rewr, err := NewSession(SmallScale())
		if err != nil {
			t.Fatal(err)
		}
		orig, err := NewSession(SmallScale())
		if err != nil {
			t.Fatal(err)
		}
		for v := 1; v <= 4; v++ {
			q := QueryFor(a, v)
			mo, err := Exec(orig, q, session.ModeOriginal)
			if err != nil {
				t.Fatal(err)
			}
			mr, err := Exec(rewr, q, session.ModeBFR)
			if err != nil {
				t.Fatal(err)
			}
			if v >= 2 {
				// Compare simulated cluster seconds (execution + stats
				// collection). The rewrite search's *real* runtime is not
				// commensurable with scaled-down simulated seconds at test
				// scale — the paper's 1TB regime makes it negligible
				// (3.1s vs 2134s, §8.3.3); the experiment harness charges
				// it at full scale.
				sumOrig += mo.ExecSeconds + mo.StatsSeconds
				sumRewr += mr.ExecSeconds + mr.StatsSeconds
			}
		}
	}
	if sumRewr >= sumOrig {
		t.Fatalf("no aggregate speedup: REWR %.2fs vs ORIG %.2fs", sumRewr, sumOrig)
	}
	imp := 100 * (1 - sumRewr/sumOrig)
	t.Logf("aggregate v2-v4 improvement: %.1f%% (REWR %.2fs vs ORIG %.2fs)", imp, sumRewr, sumOrig)
	if imp < 25 {
		t.Errorf("improvement %.1f%% too small for the Fig 7 shape", imp)
	}
}
