package workload

import (
	"math/rand"

	"opportune/internal/data"
	"opportune/internal/value"
)

// IngestQueries returns the standing views an append-heavy ingest pipeline
// keeps warm over the TWTR firehose, chosen to cover every maintenance
// class the session implements:
//
//   - ing_activity: distributive aggregates (COUNT/MIN/MAX) per user —
//     incrementally maintained by a merge-by-key delta fold;
//   - ing_replies: a map-only filtered projection — maintained by plain
//     delta append;
//   - ing_visits: an aggregate over 4SQ only — untouched by TWTR appends;
//   - ing_social: a TWTR⋈4SQ join — multi-source lineage, the fallback
//     path: invalidated and recomputed on demand.
func IngestQueries() []Query {
	return []Query{
		{Name: "ing_activity", SQL: `CREATE TABLE ing_activity AS
  SELECT user_id, COUNT(*) AS n_tweets, MIN(ts) AS first_ts, MAX(ts) AS last_ts
  FROM twtr GROUP BY user_id`},
		{Name: "ing_replies", SQL: `CREATE TABLE ing_replies AS
  SELECT tweet_id, user_id, reply_to FROM twtr WHERE reply_to >= 0`},
		{Name: "ing_visits", SQL: `CREATE TABLE ing_visits AS
  SELECT location_id, COUNT(*) AS visits FROM fsq GROUP BY location_id`},
		{Name: "ing_social", SQL: `CREATE TABLE ing_social AS
  SELECT user_id, COUNT(*) AS events FROM
    (SELECT user_id, tweet_id FROM twtr)
    JOIN (SELECT user_id AS fuser, checkin_id FROM fsq) ON user_id = fuser
  GROUP BY user_id`},
	}
}

// AppendBatch builds batch number `epoch` of n fresh TWTR rows, shaped like
// the generator's tweets (topical text, mostly-null geo, skewed replies)
// with tweet ids and timestamps continuing past the installed log.
// Deterministic in (sc.Seed, epoch, n), so experiment arms see identical
// deltas.
func AppendBatch(sc Scale, epoch, n int) []data.Row {
	rng := rand.New(rand.NewSource(sc.Seed*1000003 + int64(epoch) + 1))
	users := sc.Users
	if users <= 0 {
		users = sc.Tweets/20 + 1
	}
	rows := make([]data.Row, n)
	for i := 0; i < n; i++ {
		id := sc.Tweets + epoch*n + i
		u := rng.Intn(users)
		text := genText(rng, rng.Intn(len(topics)), 0.2+0.8*rng.Float64())
		lat, lon := value.NullV, value.NullV
		if rng.Float64() < 0.35 {
			lat = value.NewFloat(37 + rng.Float64()*2)
			lon = value.NewFloat(-122 + rng.Float64()*2)
		}
		reply := value.NullV
		if rng.Float64() < 0.3 {
			reply = value.NewInt(int64(rng.Intn(users)))
		}
		rows[i] = data.Row{
			value.NewInt(int64(id)),
			value.NewInt(int64(u)),
			value.NewInt(int64(1600000000 + id*13)),
			value.NewStr(text),
			lat, lon, reply,
		}
	}
	return rows
}
