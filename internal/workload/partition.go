package workload

import (
	"opportune/internal/afk"
	"opportune/internal/session"
)

// PartitionBases declares the analysis-key hash layout on the installed
// logs — the CLUSTERED BY physical design step of the partition experiment:
// TWTR and 4SQ bucketed on user_id (the cross-log join key), LAND on
// location_id. The declaration goes to both the store (ground truth about
// the bytes) and the catalog (what plan annotation reads), with the given
// bucket count.
func PartitionBases(s *session.Session, parts int) {
	for _, b := range []struct{ table, col string }{
		{"twtr", "user_id"},
		{"fsq", "user_id"},
		{"land", "location_id"},
	} {
		sig := afk.BaseSig(b.table, b.col).ID()
		s.Store.SetPartitioning(b.table, []string{sig}, parts)
		s.Cat.SetPartitioning(b.table, afk.Partitioning{Sigs: []string{sig}, Parts: parts})
	}
}

// PartitionQueries is the join/group-heavy workload of the partition
// experiment. Each query is annotated by how partition-aware planning sees
// it against the PartitionBases layout:
//
//   - pq_user_activity, pq_user_window: GROUP BY user_id over twtr — layout
//     hits (the filter in pq_user_window preserves bucket residency);
//   - pq_social: TWTR⋈4SQ on user_id plus a downstream GROUP BY user_id —
//     a co-partitioned join (the 4SQ side is renamed, proving the match is
//     by attribute signature, not column name), and the join's bucketed
//     output feeds the group-by shuffle-free as well;
//   - pq_checkins_loc: GROUP BY location_id over fsq — a layout miss (fsq
//     is bucketed on user_id);
//   - pq_place_visits: 4SQ⋈LAND on location_id — a miss (only one side is
//     bucketed on the join key), so the join pays a full shuffle.
func PartitionQueries() []Query {
	return []Query{
		{Name: "pq_user_activity", SQL: `CREATE TABLE pq_user_activity AS
  SELECT user_id, COUNT(*) AS n_tweets, MAX(ts) AS last_ts
  FROM twtr GROUP BY user_id`},
		{Name: "pq_social", SQL: `CREATE TABLE pq_social AS
  SELECT user_id, COUNT(*) AS events FROM
    (SELECT user_id, tweet_id FROM twtr)
    JOIN (SELECT user_id AS fuser, checkin_id FROM fsq) ON user_id = fuser
  GROUP BY user_id`},
		{Name: "pq_user_window", SQL: `CREATE TABLE pq_user_window AS
  SELECT user_id, COUNT(*) AS n FROM twtr WHERE ts >= 1600100000 GROUP BY user_id`},
		{Name: "pq_checkins_loc", SQL: `CREATE TABLE pq_checkins_loc AS
  SELECT location_id, COUNT(*) AS visits FROM fsq GROUP BY location_id`},
		{Name: "pq_place_visits", SQL: `CREATE TABLE pq_place_visits AS
  SELECT category, COUNT(*) AS visits FROM
    (SELECT location_id AS cloc, checkin_id FROM fsq)
    JOIN (SELECT location_id, category FROM land) ON cloc = location_id
  GROUP BY category`},
	}
}
