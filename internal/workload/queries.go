package workload

import (
	"fmt"
	"strings"
)

// Query identifies one workload query: analyst 1–8, version 1–4 (A_i v_j in
// the paper's notation).
type Query struct {
	Analyst int
	Version int
	Name    string // result table name, e.g. "a5v3"
	SQL     string
}

// QueryFor returns analyst a's version v query. Versions revise thresholds
// and add data sources, mirroring the evolution of [16]: v1 opens with one
// or two logs, later versions bring in all three and tighten or relax
// predicates, so consecutive versions overlap heavily and v1 queries of
// different analysts share common sub-computations (affluence scores, food
// sentiment sums, friendship strength, geo tiles).
func QueryFor(a, v int) Query {
	if a < 1 || a > 8 || v < 1 || v > 4 {
		panic(fmt.Sprintf("workload: no query A%dv%d", a, v))
	}
	name := fmt.Sprintf("a%dv%d", a, v)
	sql := builders[a-1](v)
	return Query{Analyst: a, Version: v, Name: name,
		SQL: fmt.Sprintf("CREATE TABLE %s AS %s", name, strings.TrimSpace(sql))}
}

// AllQueries returns all 32 queries in analyst-major order.
func AllQueries() []Query {
	var out []Query
	for a := 1; a <= 8; a++ {
		for v := 1; v <= 4; v++ {
			out = append(out, QueryFor(a, v))
		}
	}
	return out
}

var builders = [8]func(v int) string{a1, a2, a3, a4, a5, a6, a7, a8}

// Shared sub-queries (the cross-analyst overlap surface).

// wineSums: per-user wine sentiment sums, thresholded (A1's step a).
func wineSums(threshold float64) string {
	return fmt.Sprintf(`(SELECT user_id, SUM(wine_score) AS wine_sum
     FROM twtr APPLY UDF_CLASSIFY_WINE(text)
     GROUP BY user_id HAVING wine_sum > %g)`, threshold)
}

// foodSums: per-user food sentiment sums with a rename for joining.
func foodSums(alias string, threshold float64) string {
	return fmt.Sprintf(`(SELECT user_id AS %s, SUM(food_score) AS food_sum
     FROM twtr APPLY UDF_CLASSIFY_FOOD(text)
     GROUP BY user_id HAVING food_sum > %g)`, alias, threshold)
}

// friendPairs: communicating user pairs with strength (A1's step b).
func friendPairs(threshold int) string {
	return fmt.Sprintf(`(SELECT u1, u2, strength
     FROM twtr APPLY UDF_FRIEND_STRENGTH(user_id, reply_to)
     WHERE strength > %d)`, threshold)
}

// affluent: per-user affluence scores (A1's step c / UDAF-CLASSIFY-AFFLUENT).
func affluent(alias string, threshold float64) string {
	return fmt.Sprintf(`(SELECT user_id AS %s, afflu
     FROM twtr APPLY UDF_AFFLUENCE(user_id, text)
     WHERE afflu > %g)`, alias, threshold)
}

// categoryVisits: per-user check-in counts at landmarks of one category.
func categoryVisits(userAlias, cntAlias, category string, threshold int) string {
	return fmt.Sprintf(`(SELECT %[1]s, COUNT(*) AS %[2]s FROM
       (SELECT user_id AS %[1]s, location_id FROM fsq)
       JOIN (SELECT location_id AS lid, category FROM land WHERE category = '%[3]s')
       ON location_id = lid
     GROUP BY %[1]s HAVING %[2]s > %[4]d)`, userAlias, cntAlias, category, threshold)
}

// twtrTiles: tweet density per geo tile.
func twtrTiles(alias string, size float64, threshold int) string {
	return fmt.Sprintf(`(SELECT tile AS %s, COUNT(*) AS n_tweets
     FROM twtr APPLY UDF_EXTRACT_GEO(lat, lon) APPLY UDF_GEO_TILE(glat, glon, %g)
     GROUP BY tile HAVING n_tweets > %d)`, alias, size, threshold)
}

// A1: wine-lover targeting (the paper's running example).
func a1(v int) string {
	wineT := []float64{8, 4, 4, 5}[v-1]
	strengthT := []int{1, 1, 2, 2}[v-1]
	affluT := []float64{0.2, 0.2, 0.25, 0.25}[v-1]
	q := fmt.Sprintf(`SELECT user_id, u2, wine_sum, strength, afflu FROM
 %s
 JOIN %s ON user_id = u1
 JOIN %s ON user_id = auser`,
		wineSums(wineT), friendPairs(strengthT), affluent("auser", affluT))
	if v >= 2 {
		visitsT := []int{0, 0, 1, 1}[v-1]
		q = strings.Replace(q, "SELECT user_id, u2, wine_sum, strength, afflu FROM",
			"SELECT user_id, u2, wine_sum, strength, afflu, wb_visits FROM", 1)
		q += "\n JOIN " + categoryVisits("cuser", "wb_visits", "wine_bar", visitsT) + " ON user_id = cuser"
	}
	if v >= 4 {
		// v4 requires the user's friends to frequent wine bars too.
		q = strings.Replace(q, ", wb_visits FROM", ", wb_visits, wb_friend FROM", 1)
		q += "\n JOIN " + categoryVisits("fcuser", "wb_friend", "wine_bar", 1) + " ON u2 = fcuser"
	}
	return q
}

// A2: prolific foodies (Fig 4).
func a2(v int) string {
	foodT := []float64{5, 3, 3, 6}[v-1]
	cntT := []int{20, 10, 10, 15}[v-1]
	q := fmt.Sprintf(`SELECT user_id, cnt, food_sum FROM
 %s
 JOIN (SELECT fuser, COUNT(*) AS cnt FROM
        (SELECT user_id AS fuser, tweet_id FROM twtr)
       GROUP BY fuser HAVING cnt > %d) ON user_id = fuser`,
		strings.Replace(foodSums("user_id", foodT), "user_id AS user_id", "user_id", 1), cntT)
	if v >= 2 {
		rstT := []int{0, 0, 0, 1}[v-1]
		rest := categoryVisits("cuser", "rst_visits", "restaurant", rstT)
		if v >= 3 {
			simT := []float64{0, 0, 0.1, 0.15}[v-1]
			rest = fmt.Sprintf(`(SELECT cuser, COUNT(*) AS rst_visits FROM
       (SELECT user_id AS cuser, location_id FROM fsq)
       JOIN (SELECT location_id AS lid FROM
              (SELECT location_id, menu, category FROM land WHERE category = 'restaurant')
              APPLY UDF_MENU_SIM(menu, 'sushi ramen')
             WHERE menu_sim > %g)
       ON location_id = lid
     GROUP BY cuser HAVING rst_visits > %d)`, simT, rstT)
		}
		q = strings.Replace(q, "SELECT user_id, cnt, food_sum FROM",
			"SELECT user_id, cnt, food_sum, rst_visits FROM", 1)
		q += "\n JOIN " + rest + " ON user_id = cuser"
	}
	return q
}

// A3: geographic tweet hot spots.
func a3(v int) string {
	size := []float64{0.5, 0.5, 0.5, 0.25}[v-1]
	tweetT := []int{3, 2, 4, 2}[v-1]
	if v == 1 {
		// v1 keeps the tile centroid too: a richer aggregate than other
		// analysts' plain tile counts, so its view reuses *non-identically*
		// (projection compensation) — the related-but-different overlap
		// Table 2 measures.
		return fmt.Sprintf(`SELECT tile, COUNT(*) AS n_tweets, AVG(glat) AS avg_lat
 FROM twtr APPLY UDF_EXTRACT_GEO(lat, lon) APPLY UDF_GEO_TILE(glat, glon, %g)
 GROUP BY tile HAVING n_tweets > %d`, size, tweetT)
	}
	cafeT := []int{0, 0, 1, 0}[v-1]
	return fmt.Sprintf(`SELECT tile, n_tweets, n_cafes FROM
 %s
 JOIN (SELECT tile AS ltile, COUNT(*) AS n_cafes FROM
        (SELECT lat, lon, category FROM land WHERE category = 'cafe')
        APPLY UDF_GEO_TILE(lat, lon, %g)
       GROUP BY tile HAVING n_cafes > %d)
 ON tile = ltile`,
		strings.Replace(twtrTiles("tile", size, tweetT), "tile AS tile", "tile", 1), size, cafeT)
}

// A4: affluent influencers.
func a4(v int) string {
	inflT := []int{3, 2, 2, 4}[v-1]
	affluT := []float64{0.2, 0.2, 0.2, 0.3}[v-1]
	q := fmt.Sprintf(`SELECT influencer, influence, afflu FROM
 (SELECT influencer, influence FROM twtr APPLY UDF_INFLUENCE(reply_to)
  WHERE influence > %d)
 JOIN %s ON influencer = auser`, inflT, affluent("auser", affluT))
	if v >= 3 {
		wordsT := []float64{0, 0, 6, 7}[v-1]
		q = strings.Replace(q, "SELECT influencer, influence, afflu FROM",
			"SELECT influencer, influence, afflu, avg_words FROM", 1)
		q += fmt.Sprintf(`
 JOIN (SELECT wuser, AVG(n_words) AS avg_words FROM
        (SELECT user_id AS wuser, n_words FROM twtr APPLY UDF_WORD_COUNT(text))
       GROUP BY wuser HAVING avg_words > %g) ON influencer = wuser`, wordsT)
	}
	return q
}

// A5: restaurant campaign targeting (v3 uses all three logs).
func a5(v int) string {
	simT := []float64{0.05, 0.05, 0.05, 0.1}[v-1]
	q := fmt.Sprintf(`SELECT location_id, name, menu_sim FROM
 (SELECT location_id, name, menu_sim FROM
   (SELECT location_id, name, menu, category FROM land WHERE category = 'restaurant')
   APPLY UDF_MENU_SIM(menu, 'pasta pizza')
  WHERE menu_sim > %g)`, simT)
	if v >= 2 {
		visitsT := []int{0, 2, 2, 3}[v-1]
		q = strings.Replace(q, "SELECT location_id, name, menu_sim FROM",
			"SELECT location_id, name, menu_sim, visits FROM", 1)
		q += fmt.Sprintf(`
 JOIN (SELECT location_id AS vloc, COUNT(*) AS visits FROM fsq
       GROUP BY location_id HAVING visits > %d) ON location_id = vloc`, visitsT)
	}
	if v >= 3 {
		foodT := []float64{0, 0, 1, 2}[v-1]
		q = strings.Replace(q, ", visits FROM", ", visits, vis_food FROM", 1)
		q += fmt.Sprintf(`
 JOIN (SELECT floc, AVG(food_sum) AS vis_food FROM
        (SELECT location_id AS floc, user_id FROM fsq)
        JOIN %s ON user_id = fuser
       GROUP BY floc HAVING vis_food > %g) ON location_id = floc`,
			foodSums("fuser", 0), foodT)
	}
	return q
}

// A6: verbose English-language users.
func a6(v int) string {
	wordsT := []int{8, 6, 6, 6}[v-1]
	longT := []int{3, 3, 3, 5}[v-1]
	q := fmt.Sprintf(`SELECT user_id, COUNT(*) AS n_long
 FROM twtr APPLY UDF_PARSE_LOG(text) APPLY UDF_WORD_COUNT(clean_text)
 WHERE lang = 'en' AND n_words > %d
 GROUP BY user_id HAVING n_long > %d`, wordsT, longT)
	if v == 1 {
		// v1 already joins affluence: the overlap surface with A1/A4.
		return fmt.Sprintf(`SELECT user_id, n_long, afflu FROM
 (%s)
 JOIN %s ON user_id = auser`, q, affluent("auser", 0.2))
	}
	affluT := []float64{0, 0.2, 0.2, 0.3}[v-1]
	out := fmt.Sprintf(`SELECT user_id, n_long, afflu FROM
 (%s)
 JOIN %s ON user_id = auser`, q, affluent("auser", affluT))
	if v >= 3 {
		checkT := []int{0, 0, 1, 2}[v-1]
		out = strings.Replace(out, "SELECT user_id, n_long, afflu FROM",
			"SELECT user_id, n_long, afflu, n_checkins FROM", 1)
		out += fmt.Sprintf(`
 JOIN (SELECT user_id AS kuser, COUNT(*) AS n_checkins FROM fsq
       GROUP BY user_id HAVING n_checkins > %d) ON user_id = kuser`, checkT)
	}
	return out
}

// A7: food enthusiasts, refined to sentence-level sentiment in later
// versions.
func a7(v int) string {
	if v == 1 {
		// Tweet-level combined sentiment profile: food + wine sums and a
		// tweet count in ONE aggregation, joined with friendship pairs.
		// Overlaps A1 (wine sums), A2 (food sums, tweet counts) with a
		// richer — hence non-identical — view, and is itself answerable by
		// merging A1's and A2's narrower views (a 3-way MERGE case).
		return fmt.Sprintf(`SELECT user_id, food_sum, wine_sum, n_tw, strength FROM
 (SELECT user_id, SUM(food_score) AS food_sum, SUM(wine_score) AS wine_sum, COUNT(*) AS n_tw
  FROM twtr APPLY UDF_CLASSIFY_FOOD(text) APPLY UDF_CLASSIFY_WINE(text)
  GROUP BY user_id HAVING food_sum > 4)
 JOIN %s ON user_id = u1`, friendPairs(1))
	}
	wineT := []float64{0, 1, 1, 1}[v-1]
	sentT := []int{0, 1, 2, 2}[v-1]
	q := fmt.Sprintf(`SELECT user_id, COUNT(*) AS pos_sents
 FROM twtr APPLY UDF_TOKENIZE(text) APPLY UDF_CLASSIFY_WINE(sentence)
 WHERE wine_score > %g
 GROUP BY user_id HAVING pos_sents > %d`, wineT, sentT)
	if v == 2 {
		return q
	}
	out := fmt.Sprintf(`SELECT user_id, pos_sents, strength FROM
 (%s)
 JOIN %s ON user_id = u1`, q, friendPairs(1))
	if v == 4 {
		out = strings.Replace(out, "SELECT user_id, pos_sents, strength FROM",
			"SELECT user_id, pos_sents, strength, food_sum FROM", 1)
		out += "\n JOIN " + foodSums("fduser", 4) + " ON user_id = fduser"
	}
	return out
}

// A8: landmark density vs tweet activity.
func a8(v int) string {
	landT := []int{2, 2, 1, 3}[v-1]
	if v == 3 {
		// museums only: a pre-aggregation filter, limiting reuse on purpose.
		return fmt.Sprintf(`SELECT tile, COUNT(*) AS n_land
 FROM (SELECT location_id, category, lat, lon FROM land WHERE category = 'museum')
 APPLY UDF_GEO_TILE(lat, lon, 0.5)
 GROUP BY tile HAVING n_land > 0`)
	}
	q := fmt.Sprintf(`(SELECT tile, COUNT(*) AS n_land
 FROM land APPLY UDF_GEO_TILE(lat, lon, 0.5)
 GROUP BY tile HAVING n_land > %d)`, landT)
	if v == 1 {
		// v1 already joins tweet tiles: shared with A3 (same 0.5 grid).
		return fmt.Sprintf(`SELECT tile, n_land, n_tweets FROM
 %s
 JOIN %s ON tile = ttile`, q, twtrTiles("ttile", 0.5, 1))
	}
	tweetT := []int{0, 1, 0, 2}[v-1]
	return fmt.Sprintf(`SELECT tile, n_land, n_tweets FROM
 %s
 JOIN %s ON tile = ttile`, q, twtrTiles("ttile", 0.5, tweetT))
}
