package workload

import (
	"fmt"
	"math"
	"strings"

	"opportune/internal/cost"
	"opportune/internal/session"
	"opportune/internal/udf"
	"opportune/internal/value"
)

// The workload's UDF library mirrors the paper's (§8.2): "a log
// parser/extractor, text sentiment classifier, sentence tokenizer, lat/lon
// extractor, word count, restaurant menu similarity, and geographical
// tiling, among others", plus the classifiers the A1 example names
// (UDF-CLASSIFY-WINE-SCORE, UDAF-CLASSIFY-AFFLUENT, friendship strength).
// Each is real Go code annotated with the gray-box model; TrueScalar
// reflects its intrinsic computational weight relative to the relational
// baseline and is recovered by calibration (§4.2).

func tokenSet(s string) map[string]bool {
	out := make(map[string]bool)
	for _, w := range strings.Fields(strings.ToLower(s)) {
		out[strings.Trim(w, ".,!?")] = true
	}
	return out
}

func wordList(words []string) map[string]bool {
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return m
}

var (
	wineSet   = wordList(wineWords)
	foodSet   = wordList(foodWords)
	posSet    = wordList(posWords)
	negSet    = wordList(negWords)
	travelSet = wordList(travelWords)
)

// classifyScore is the shared sentiment-classifier core: topical hits
// scaled by sentiment polarity.
func classifyScore(text string, topic map[string]bool) float64 {
	var hits, pos, neg float64
	for _, w := range strings.Fields(strings.ToLower(text)) {
		w = strings.Trim(w, ".,!?")
		switch {
		case topic[w]:
			hits++
		case posSet[w]:
			pos++
		case negSet[w]:
			neg++
		}
	}
	if hits == 0 {
		return 0
	}
	return hits * (1 + pos - neg)
}

// UDFLibrary returns fresh descriptors for the full library.
func UDFLibrary() []*udf.Descriptor {
	return []*udf.Descriptor{
		{
			// Text sentiment classifier for wine topics (A1's
			// UDF-CLASSIFY-WINE-SCORE).
			Name: "UDF_CLASSIFY_WINE", NArgs: 1, Kind: udf.KindMap,
			OutNames: []string{"wine_score"},
			Map: func(args, _ []value.V) [][]value.V {
				return [][]value.V{{value.NewFloat(classifyScore(args[0].Str(), wineSet))}}
			},
			TrueScalar: 20,
		},
		{
			// Food sentiment classifier (UDF_FOODIES' lf1, Fig 3).
			Name: "UDF_CLASSIFY_FOOD", NArgs: 1, Kind: udf.KindMap,
			OutNames: []string{"food_score"},
			Map: func(args, _ []value.V) [][]value.V {
				return [][]value.V{{value.NewFloat(classifyScore(args[0].Str(), foodSet))}}
			},
			TrueScalar: 20,
		},
		{
			// Per-user affluence classifier (UDAF-CLASSIFY-AFFLUENT):
			// fraction of the user's tweets mentioning luxury/travel terms.
			Name: "UDF_AFFLUENCE", NArgs: 2, Kind: udf.KindAgg,
			KeyNames: []string{"user_id"}, KeyArgs: []int{0},
			OutNames: []string{"afflu"},
			Reduce: func(_ []value.V, payloads [][]value.V, _ []value.V) []value.V {
				hits := 0
				for _, p := range payloads {
					for w := range tokenSet(p[0].Str()) {
						if travelSet[w] {
							hits++
							break
						}
					}
				}
				return []value.V{value.NewFloat(float64(hits) / float64(len(payloads)))}
			},
			TrueScalar: 15,
		},
		{
			// Friendship strength: communicating user pairs scored by the
			// number of interactions (A1v1 step b).
			Name: "UDF_FRIEND_STRENGTH", NArgs: 2, Kind: udf.KindAgg,
			KeyNames: []string{"u1", "u2"}, DerivedKeys: true, PayloadCols: 1,
			OutNames: []string{"strength"},
			PreMap: func(args, _ []value.V) ([]value.V, []value.V, bool) {
				if args[1].IsNull() {
					return nil, nil, false
				}
				a, b := args[0].Int(), args[1].Int()
				if a == b {
					return nil, nil, false
				}
				if a > b {
					a, b = b, a
				}
				return []value.V{value.NewInt(a), value.NewInt(b)}, []value.V{value.NewInt(1)}, true
			},
			Reduce: func(_ []value.V, payloads [][]value.V, _ []value.V) []value.V {
				return []value.V{value.NewInt(int64(len(payloads)))}
			},
			TrueScalar: 5,
		},
		{
			// Sentence tokenizer: explodes a tweet into sentences.
			Name: "UDF_TOKENIZE", NArgs: 1, Kind: udf.KindMap,
			OutNames: []string{"sentence"}, Explode: true,
			Map: func(args, _ []value.V) [][]value.V {
				var out [][]value.V
				for _, s := range strings.Split(args[0].Str(), ". ") {
					s = strings.TrimSpace(s)
					if s != "" {
						out = append(out, []value.V{value.NewStr(s)})
					}
				}
				return out
			},
			TrueScalar: 8,
		},
		{
			// Lat/lon extractor: validates coordinates and discards rows
			// without geo data (most tweets).
			Name: "UDF_EXTRACT_GEO", NArgs: 2, Kind: udf.KindMap,
			OutNames: []string{"glat", "glon"}, Filters: true,
			Map: func(args, _ []value.V) [][]value.V {
				if args[0].IsNull() || args[1].IsNull() {
					return nil
				}
				la, lo := args[0].Float(), args[1].Float()
				if la < -90 || la > 90 || lo < -180 || lo > 180 {
					return nil
				}
				return [][]value.V{{value.NewFloat(la), value.NewFloat(lo)}}
			},
			TrueScalar: 2,
		},
		{
			// Word counter.
			Name: "UDF_WORD_COUNT", NArgs: 1, Kind: udf.KindMap,
			OutNames: []string{"n_words"},
			Map: func(args, _ []value.V) [][]value.V {
				return [][]value.V{{value.NewInt(int64(len(strings.Fields(args[0].Str()))))}}
			},
			TrueScalar: 3,
		},
		{
			// Geographical tiling at a parameterized grid size (degrees).
			Name: "UDF_GEO_TILE", NArgs: 2, NParams: 1, Kind: udf.KindMap,
			OutNames: []string{"tile"},
			Map: func(args, params []value.V) [][]value.V {
				size := params[0].Float()
				if size <= 0 {
					size = 0.1
				}
				tx := int(math.Floor(args[0].Float() / size))
				ty := int(math.Floor(args[1].Float() / size))
				return [][]value.V{{value.NewStr(fmt.Sprintf("%d:%d", tx, ty))}}
			},
			TrueScalar: 4,
		},
		{
			// Restaurant menu similarity against a parameter cuisine:
			// Jaccard overlap of menu tokens.
			Name: "UDF_MENU_SIM", NArgs: 1, NParams: 1, Kind: udf.KindMap,
			OutNames: []string{"menu_sim"},
			Map: func(args, params []value.V) [][]value.V {
				menu := tokenSet(args[0].Str())
				target := tokenSet(params[0].Str())
				if len(menu) == 0 || len(target) == 0 {
					return [][]value.V{{value.NewFloat(0)}}
				}
				inter := 0
				for w := range target {
					if menu[w] {
						inter++
					}
				}
				union := len(menu) + len(target) - inter
				return [][]value.V{{value.NewFloat(float64(inter) / float64(union))}}
			},
			TrueScalar: 25,
		},
		{
			// Log parser/extractor: normalizes text and tags a language.
			Name: "UDF_PARSE_LOG", NArgs: 1, Kind: udf.KindMap,
			OutNames: []string{"clean_text", "lang"},
			Map: func(args, _ []value.V) [][]value.V {
				clean := strings.Join(strings.Fields(strings.ToLower(args[0].Str())), " ")
				lang := "en"
				if len(clean) == 0 {
					lang = "unknown"
				}
				return [][]value.V{{value.NewStr(clean), value.NewStr(lang)}}
			},
			TrueScalar: 6,
		},
		{
			// Network influence: replies received per user (social network
			// operator class from §3).
			Name: "UDF_INFLUENCE", NArgs: 1, Kind: udf.KindAgg,
			KeyNames: []string{"influencer"}, DerivedKeys: true, PayloadCols: 1,
			OutNames: []string{"influence"},
			PreMap: func(args, _ []value.V) ([]value.V, []value.V, bool) {
				if args[0].IsNull() {
					return nil, nil, false
				}
				return []value.V{args[0]}, []value.V{value.NewInt(1)}, true
			},
			Reduce: func(_ []value.V, payloads [][]value.V, _ []value.V) []value.V {
				return []value.V{value.NewInt(int64(len(payloads)))}
			},
			TrueScalar: 10,
		},
	}
}

// RegisterUDFs installs the library into a session and calibrates each UDF
// on a 1% sample of its natural input dataset (§4.2, one-time effort).
func RegisterUDFs(s *session.Session) error {
	calibArgs := map[string]struct {
		dataset string
		args    []string
		params  []value.V
	}{
		"UDF_CLASSIFY_WINE":   {"twtr", []string{"text"}, nil},
		"UDF_CLASSIFY_FOOD":   {"twtr", []string{"text"}, nil},
		"UDF_AFFLUENCE":       {"twtr", []string{"user_id", "text"}, nil},
		"UDF_FRIEND_STRENGTH": {"twtr", []string{"user_id", "reply_to"}, nil},
		"UDF_TOKENIZE":        {"twtr", []string{"text"}, nil},
		"UDF_EXTRACT_GEO":     {"twtr", []string{"lat", "lon"}, nil},
		"UDF_WORD_COUNT":      {"twtr", []string{"text"}, nil},
		"UDF_GEO_TILE":        {"land", []string{"lat", "lon"}, []value.V{value.NewFloat(0.1)}},
		"UDF_MENU_SIM":        {"land", []string{"menu"}, []value.V{value.NewStr("pasta pizza")}},
		"UDF_PARSE_LOG":       {"twtr", []string{"text"}, nil},
		"UDF_INFLUENCE":       {"twtr", []string{"reply_to"}, nil},
	}
	for i, d := range UDFLibrary() {
		if err := s.Cat.UDFs.Register(d); err != nil {
			return err
		}
		ca, ok := calibArgs[d.Name]
		if !ok {
			return fmt.Errorf("workload: no calibration input for %s", d.Name)
		}
		if _, err := udf.Calibrate(s.Eng, ca.dataset, d, ca.args, ca.params, 1000+int64(i)); err != nil {
			return fmt.Errorf("workload: calibrating %s: %w", d.Name, err)
		}
	}
	return nil
}

// CostParams returns the engine/optimizer cost parameters experiments use.
func CostParams() cost.Params { return cost.DefaultParams() }
