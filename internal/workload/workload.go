package workload

import (
	"fmt"

	"opportune/internal/hiveql"
	"opportune/internal/session"
)

// NewSession builds a ready system: datasets installed, stats registered,
// UDF library registered and calibrated.
func NewSession(sc Scale) (*session.Session, error) {
	s := session.New(CostParams())
	if _, err := Install(s, sc); err != nil {
		return nil, err
	}
	return s, nil
}

// Exec parses and runs one workload query under the given mode.
func Exec(s *session.Session, q Query, mode session.Mode) (*session.Metrics, error) {
	st, err := hiveql.ParseOne(q.SQL)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", q.Name, err)
	}
	m, err := s.Run(st.Plan, st.Table, mode)
	if err != nil {
		return nil, fmt.Errorf("workload: %s (%s): %w", q.Name, mode, err)
	}
	return m, nil
}
