package workload

import (
	"fmt"

	"opportune/internal/hiveql"
	"opportune/internal/session"
)

// NewSession builds a ready system: datasets installed, stats registered,
// UDF library registered and calibrated.
func NewSession(sc Scale) (*session.Session, error) {
	s := session.New(CostParams())
	if _, err := Install(s, sc); err != nil {
		return nil, err
	}
	return s, nil
}

// Batch parses workload queries into entries for Session.RunBatch, all
// under the given mode. Result tables keep their workload names, so batch
// and sequential execution materialize the same datasets.
func Batch(qs []Query, mode session.Mode) ([]session.BatchQuery, error) {
	out := make([]session.BatchQuery, 0, len(qs))
	for _, q := range qs {
		st, err := hiveql.ParseOne(q.SQL)
		if err != nil {
			return nil, fmt.Errorf("workload: %s: %w", q.Name, err)
		}
		out = append(out, session.BatchQuery{Plan: st.Plan, ResultName: st.Table, Mode: mode})
	}
	return out, nil
}

// Exec parses and runs one workload query under the given mode.
func Exec(s *session.Session, q Query, mode session.Mode) (*session.Metrics, error) {
	st, err := hiveql.ParseOne(q.SQL)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", q.Name, err)
	}
	m, err := s.Run(st.Plan, st.Table, mode)
	if err != nil {
		return nil, fmt.Errorf("workload: %s (%s): %w", q.Name, mode, err)
	}
	return m, nil
}
