package workload

import (
	"testing"

	"opportune/internal/hiveql"
	"opportune/internal/session"
)

func TestGenerateShapes(t *testing.T) {
	sc := SmallScale()
	ds := Generate(sc)
	if ds.TWTR.Len() != sc.Tweets || ds.FSQ.Len() != sc.Checkins || ds.LAND.Len() != sc.Landmarks {
		t.Fatalf("sizes: %d %d %d", ds.TWTR.Len(), ds.FSQ.Len(), ds.LAND.Len())
	}
	// deterministic
	ds2 := Generate(sc)
	if ds.TWTR.Fingerprint() != ds2.TWTR.Fingerprint() {
		t.Error("TWTR not deterministic")
	}
	// geo mostly missing
	withGeo := 0
	for i := 0; i < ds.TWTR.Len(); i++ {
		if !ds.TWTR.Get(i, "lat").IsNull() {
			withGeo++
		}
	}
	frac := float64(withGeo) / float64(ds.TWTR.Len())
	if frac < 0.2 || frac > 0.5 {
		t.Errorf("geo fraction = %g", frac)
	}
	// replies exist and are not self-replies
	replies := 0
	for i := 0; i < ds.TWTR.Len(); i++ {
		r := ds.TWTR.Get(i, "reply_to")
		if !r.IsNull() {
			replies++
			if r.Int() == ds.TWTR.Get(i, "user_id").Int() {
				t.Fatal("self reply generated")
			}
		}
	}
	if replies == 0 {
		t.Error("no replies generated")
	}
	// user_id domain shared between TWTR and FSQ
	if ds.FSQ.DistinctCount("user_id") > sc.Users {
		t.Error("FSQ user domain too large")
	}
	// every query-relevant category appears
	cats := map[string]bool{}
	for i := 0; i < ds.LAND.Len(); i++ {
		cats[ds.LAND.Get(i, "category").Str()] = true
	}
	for _, want := range []string{"wine_bar", "restaurant", "cafe", "museum"} {
		if !cats[want] {
			t.Errorf("category %s missing", want)
		}
	}
}

func TestInstallAndCalibration(t *testing.T) {
	s, err := NewSession(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"twtr", "fsq", "land"} {
		if _, ok := s.Cat.Table(name); !ok {
			t.Errorf("table %s missing", name)
		}
	}
	if got := len(s.Cat.UDFs.Names()); got != 11 {
		t.Errorf("UDFs registered = %d, want 11", got)
	}
	// calibration recovered scalars close to intrinsic weights
	for _, name := range s.Cat.UDFs.Names() {
		d, _ := s.Cat.UDFs.Get(name)
		if d.Scalar < 1 {
			t.Errorf("%s scalar = %g", name, d.Scalar)
		}
		if d.Scalar > d.TrueScalar*1.5+1 {
			t.Errorf("%s scalar = %g vs true %g", name, d.Scalar, d.TrueScalar)
		}
	}
}

func TestAllQueriesParse(t *testing.T) {
	qs := AllQueries()
	if len(qs) != 32 {
		t.Fatalf("queries = %d", len(qs))
	}
	seen := map[string]bool{}
	for _, q := range qs {
		if seen[q.Name] {
			t.Errorf("duplicate query name %s", q.Name)
		}
		seen[q.Name] = true
		st, err := hiveql.ParseOne(q.SQL)
		if err != nil {
			t.Errorf("A%dv%d does not parse: %v\n%s", q.Analyst, q.Version, err, q.SQL)
			continue
		}
		if st.Table != q.Name {
			t.Errorf("A%dv%d table = %q", q.Analyst, q.Version, st.Table)
		}
	}
}

func TestAllQueriesExecuteOriginal(t *testing.T) {
	s, err := NewSession(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range AllQueries() {
		m, err := Exec(s, q, session.ModeOriginal)
		if err != nil {
			t.Fatalf("A%dv%d failed: %v\n%s", q.Analyst, q.Version, err, q.SQL)
		}
		if m.ExecSeconds <= 0 || m.Jobs == 0 {
			t.Errorf("A%dv%d did not execute: %+v", q.Analyst, q.Version, m)
		}
		rel, err := s.Store.Read(q.Name)
		if err != nil {
			t.Fatalf("A%dv%d result missing: %v", q.Analyst, q.Version, err)
		}
		t.Logf("A%dv%d: %d rows, %d jobs, %.2fs sim", q.Analyst, q.Version, rel.Len(), m.Jobs, m.ExecSeconds)
	}
	// a sanity floor: most queries should produce rows on this data
	nonEmpty := 0
	for _, q := range AllQueries() {
		rel, _ := s.Store.Read(q.Name)
		if rel.Len() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 24 {
		t.Errorf("only %d/32 queries returned rows; workload data too sparse", nonEmpty)
	}
}

func TestPanicsOnBadQueryID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("QueryFor(0,1) did not panic")
		}
	}()
	QueryFor(0, 1)
}
