// Package opportune is a from-scratch reproduction of "Opportunistic
// Physical Design for Big Data Analytics" (LeFevre et al., SIGMOD 2014).
//
// It bundles a simulated MapReduce analytics stack — HDFS-like storage, an
// MR execution engine, a HiveQL-flavoured query language, an optimizer, a
// UDF framework with the paper's gray-box (A,F,K) semantic model — and the
// paper's contribution on top: every job output is retained as an
// opportunistic materialized view, and new queries are rewritten against
// those views by the BFREWRITE best-first algorithm.
//
// Quick start:
//
//	sys := opportune.New()
//	sys.CreateTable("logs", "id", []string{"id", "user", "text"}, rows)
//	sys.RegisterMapUDF(opportune.MapUDF{
//	    Name: "SCORE", Args: 1, Outputs: []string{"score"}, Weight: 10,
//	    Fn: func(args, params []any) [][]any { ... },
//	})
//	res, _ := sys.Exec(`SELECT user, SUM(score) AS s FROM logs
//	                    APPLY SCORE(text) GROUP BY user HAVING s > 1`)
//	// run a revised query: it is rewritten against the first run's views
//	res2, _ := sys.Exec(`... HAVING s > 5`)
package opportune

import (
	"fmt"
	"slices"

	"opportune/internal/afk"
	"opportune/internal/cost"
	"opportune/internal/data"
	"opportune/internal/hiveql"
	"opportune/internal/persist"
	"opportune/internal/session"
	"opportune/internal/storage"
	"opportune/internal/udf"
	"opportune/internal/value"
)

// RewriteMode selects how queries are optimized against existing views.
type RewriteMode uint8

const (
	// RewriteBFR uses the paper's BFREWRITE best-first algorithm (default).
	RewriteBFR RewriteMode = iota
	// RewriteOff executes queries as written.
	RewriteOff
	// RewriteDP uses the exhaustive dynamic-programming baseline.
	RewriteDP
	// RewriteSyntactic reuses only syntactically identical sub-plans
	// (caching-style systems such as ReStore).
	RewriteSyntactic
)

func (m RewriteMode) mode() session.Mode {
	switch m {
	case RewriteOff:
		return session.ModeOriginal
	case RewriteDP:
		return session.ModeDP
	case RewriteSyntactic:
		return session.ModeSyntactic
	default:
		return session.ModeBFR
	}
}

// System is one analytics system instance. A System is not safe for
// concurrent use: queries must run one at a time (the paper's system, like
// Hive's CLI, is likewise session-oriented); create one System per
// concurrent session if needed — they share nothing.
type System struct {
	s      *session.Session
	mode   RewriteMode
	nQuery int
	nCalib int64
	saved  *persist.Saved
}

// New creates a system with default cost-model parameters and BFREWRITE
// enabled.
func New() *System {
	return &System{s: session.New(cost.DefaultParams())}
}

// SetRewriteMode switches the rewriting strategy for subsequent Exec calls.
func (sys *System) SetRewriteMode(m RewriteMode) { sys.mode = m }

// Session exposes the underlying session for advanced (module-internal)
// use: experiments, benchmarks, and tests.
func (sys *System) Session() *session.Session { return sys.s }

// toValue converts a public scalar to the engine's value type.
func toValue(v any) (value.V, error) {
	switch x := v.(type) {
	case nil:
		return value.NullV, nil
	case int:
		return value.NewInt(int64(x)), nil
	case int64:
		return value.NewInt(x), nil
	case float64:
		return value.NewFloat(x), nil
	case string:
		return value.NewStr(x), nil
	case bool:
		return value.NewBool(x), nil
	case value.V:
		return x, nil
	default:
		return value.NullV, fmt.Errorf("opportune: unsupported value type %T", v)
	}
}

// fromValue converts an engine value to a public scalar.
func fromValue(v value.V) any {
	switch v.Kind() {
	case value.Null:
		return nil
	case value.Int:
		return v.Int()
	case value.Float:
		return v.Float()
	case value.Str:
		return v.Str()
	case value.Bool:
		return v.Bool()
	default:
		return nil
	}
}

func toValues(in []any) ([]value.V, error) {
	out := make([]value.V, len(in))
	for i, v := range in {
		x, err := toValue(v)
		if err != nil {
			return nil, err
		}
		out[i] = x
	}
	return out, nil
}

func fromValues(in []value.V) []any {
	out := make([]any, len(in))
	for i, v := range in {
		out[i] = fromValue(v)
	}
	return out
}

// CreateTable loads a base log into the system. keyColumn names the
// record-key column ("" if none); its functional dependencies are
// registered so the rewriter can reason about grouping refinement.
func (sys *System) CreateTable(name, keyColumn string, columns []string, rows [][]any) error {
	rel := data.NewRelation(data.NewSchema(columns...))
	for _, r := range rows {
		vr, err := toValues(r)
		if err != nil {
			return err
		}
		rel.Append(data.Row(vr))
	}
	sys.s.Store.Put(name, storage.Base, rel)
	distinct := make(map[string]int64, len(columns))
	for _, c := range columns {
		distinct[c] = int64(rel.DistinctCount(c))
	}
	sys.s.Cat.RegisterBase(name, columns, keyColumn,
		cost.Stats{Rows: int64(rel.Len()), Bytes: rel.EncodedSize()}, distinct)
	return nil
}

// ClusterTable declares a base table's physical layout: its rows are
// hash-distributed into buckets by the given key columns (in order), the
// CLUSTERED BY of the ingest pipeline that wrote them. The optimizer then
// compiles any job whose shuffle key starts with those columns — a GROUP
// BY on them, or a join against a table clustered the same way with the
// same bucket count — without moving data, and prices the eliminated
// transfer into every rewrite decision. The claim is the caller's: declare
// only layouts the bytes actually satisfy. View layouts are not declarable
// — the engine records what it materialized.
func (sys *System) ClusterTable(table string, columns []string, buckets int) error {
	info, ok := sys.s.Cat.Table(table)
	if !ok || info.IsView {
		return fmt.Errorf("opportune: %q is not a base table", table)
	}
	if len(columns) == 0 || buckets <= 0 {
		return fmt.Errorf("opportune: clustering needs key columns and a positive bucket count")
	}
	sigs := make([]string, len(columns))
	for i, c := range columns {
		if !slices.Contains(info.Cols, c) {
			return fmt.Errorf("opportune: table %q has no column %q", table, c)
		}
		sigs[i] = afk.BaseSig(table, c).ID()
	}
	sys.s.Store.SetPartitioning(table, sigs, buckets)
	sys.s.Cat.SetPartitioning(table, afk.Partitioning{Sigs: sigs, Parts: buckets})
	return nil
}

// MapUDF declares a per-tuple UDF (model operation types 1 and 2): it adds
// Outputs columns computed from Args argument columns, may drop tuples
// (Filters), and may emit several rows per input (Explode).
type MapUDF struct {
	Name    string
	Args    int
	Params  int
	Outputs []string
	Filters bool
	Explode bool
	// Weight is the UDF's intrinsic computational cost relative to a basic
	// relational operation (>= 1); calibration recovers it from a sample
	// run (§4.2 of the paper).
	Weight float64
	Fn     func(args, params []any) [][]any
}

// RegisterMapUDF installs a per-tuple UDF.
func (sys *System) RegisterMapUDF(m MapUDF) error {
	if m.Weight < 1 {
		m.Weight = 1
	}
	fn := m.Fn
	d := &udf.Descriptor{
		Name: m.Name, NArgs: m.Args, NParams: m.Params,
		Kind: udf.KindMap, OutNames: m.Outputs,
		Filters: m.Filters, Explode: m.Explode,
		TrueScalar: m.Weight,
		Map: func(args, params []value.V) [][]value.V {
			rows := fn(fromValues(args), fromValues(params))
			out := make([][]value.V, 0, len(rows))
			for _, r := range rows {
				vr, err := toValues(r)
				if err != nil {
					panic(fmt.Sprintf("opportune: UDF %s emitted %v", m.Name, err))
				}
				out = append(out, vr)
			}
			return out
		},
	}
	return sys.s.Cat.UDFs.Register(d)
}

// AggUDF declares a grouping UDF (operation type 3): tuples are grouped by
// the KeyArgs argument columns (or by keys a custom PreMap derives) and
// Reduce computes the Outputs per group.
type AggUDF struct {
	Name    string
	Args    int
	Params  int
	Keys    []string
	KeyArgs []int
	Outputs []string
	Weight  float64
	Reduce  func(key []any, groupRows [][]any, params []any) []any
}

// RegisterAggUDF installs a grouping UDF.
func (sys *System) RegisterAggUDF(a AggUDF) error {
	if a.Weight < 1 {
		a.Weight = 1
	}
	reduce := a.Reduce
	d := &udf.Descriptor{
		Name: a.Name, NArgs: a.Args, NParams: a.Params,
		Kind: udf.KindAgg, KeyNames: a.Keys, KeyArgs: a.KeyArgs,
		OutNames:   a.Outputs,
		TrueScalar: a.Weight,
		Reduce: func(key []value.V, payloads [][]value.V, params []value.V) []value.V {
			rows := make([][]any, len(payloads))
			for i, p := range payloads {
				rows[i] = fromValues(p)
			}
			out := reduce(fromValues(key), rows, fromValues(params))
			if out == nil {
				return nil
			}
			vr, err := toValues(out)
			if err != nil {
				panic(fmt.Sprintf("opportune: UDF %s emitted %v", a.Name, err))
			}
			return vr
		},
	}
	return sys.s.Cat.UDFs.Register(d)
}

// CalibrateUDF runs the one-time sample calibration of a UDF's cost scalar
// (§4.2) against a stored dataset, returning the calibrated scalar.
func (sys *System) CalibrateUDF(udfName, dataset string, argColumns []string, params ...any) (float64, error) {
	d, ok := sys.s.Cat.UDFs.Get(udfName)
	if !ok {
		return 0, fmt.Errorf("opportune: unknown UDF %q", udfName)
	}
	vp, err := toValues(params)
	if err != nil {
		return 0, err
	}
	sys.nCalib++
	res, err := udf.Calibrate(sys.s.Eng, dataset, d, argColumns, vp, 7000+sys.nCalib)
	if err != nil {
		return 0, err
	}
	return res.Scalar, nil
}

// Result reports one executed statement.
type Result struct {
	Table   string // result table name
	Columns []string
	Rows    [][]any

	// ExecSeconds is the simulated cluster execution time (including the
	// per-view statistics jobs); RewriteSeconds is the real runtime of the
	// rewrite search; Rewritten reports whether a cheaper rewrite was used.
	ExecSeconds    float64
	RewriteSeconds float64
	Rewritten      bool
	Jobs           int
	DataMovedBytes int64
}

// Exec parses and runs a script (one or more ';'-separated statements)
// under the current rewrite mode, returning one result per statement.
// Statements without CREATE TABLE get a generated result name.
func (sys *System) Exec(script string) ([]*Result, error) {
	stmts, err := hiveql.Parse(script)
	if err != nil {
		return nil, err
	}
	var out []*Result
	for _, st := range stmts {
		name := st.Table
		if name == "" {
			sys.nQuery++
			name = fmt.Sprintf("_q%d", sys.nQuery)
		}
		m, err := sys.s.Run(st.Plan, name, sys.mode.mode())
		if err != nil {
			return out, err
		}
		rel, err := sys.s.Store.Read(m.ResultName)
		if err != nil {
			return out, err
		}
		r := &Result{
			Table:          m.ResultName,
			Columns:        rel.Schema().Cols(),
			ExecSeconds:    m.ExecSeconds + m.StatsSeconds,
			RewriteSeconds: m.RewriteSeconds,
			Rewritten:      m.Rewrite != nil && m.Rewrite.Improved,
			Jobs:           m.Jobs,
			DataMovedBytes: m.DataMovedBytes,
		}
		for _, row := range rel.Rows() {
			r.Rows = append(r.Rows, fromValues(row))
		}
		out = append(out, r)
	}
	return out, nil
}

// ExecOne runs a script expected to hold exactly one statement.
func (sys *System) ExecOne(script string) (*Result, error) {
	rs, err := sys.Exec(script)
	if err != nil {
		return nil, err
	}
	if len(rs) != 1 {
		return nil, fmt.Errorf("opportune: expected one statement, got %d", len(rs))
	}
	return rs[0], nil
}

// ViewInfo describes one opportunistic materialized view.
type ViewInfo struct {
	Name      string
	Columns   []string
	Rows      int64
	SizeBytes int64
}

// Views lists the opportunistic physical design accumulated so far.
func (sys *System) Views() []ViewInfo {
	var out []ViewInfo
	for _, v := range sys.s.Cat.Views() {
		out = append(out, ViewInfo{
			Name: v.Name, Columns: append([]string(nil), v.Cols...),
			Rows: v.Stats.Rows, SizeBytes: v.Stats.Bytes,
		})
	}
	return out
}

// DropViews discards every opportunistic view (base tables stay).
func (sys *System) DropViews() { sys.s.DropViews() }

// AppendReport describes how one AppendRows affected the opportunistic
// physical design: which dependent views (decided exactly via attribute-
// signature provenance) were incrementally maintained from the appended
// delta, which were invalidated and why, and the simulated maintenance
// cost.
type AppendReport struct {
	Table string
	Rows  int

	Maintained  []string          // views refreshed in place from the delta
	Invalidated []string          // views dropped
	Reasons     map[string]string // view -> why it could not be maintained

	SimSeconds float64 // simulated maintenance + statistics cost
}

// AppendRows adds records to a base table. Dependent opportunistic views
// are maintained incrementally when their provenance admits it (single-
// table lineage, distributive aggregates) and invalidated otherwise.
func (sys *System) AppendRows(table string, rows [][]any) (*AppendReport, error) {
	drows := make([]data.Row, len(rows))
	for i, r := range rows {
		vr, err := toValues(r)
		if err != nil {
			return nil, err
		}
		drows[i] = data.Row(vr)
	}
	rep, err := sys.s.AppendRows(table, drows)
	if err != nil {
		return nil, err
	}
	return &AppendReport{
		Table: rep.Table, Rows: rep.Rows,
		Maintained:  rep.Maintained,
		Invalidated: rep.Invalidated,
		Reasons:     rep.Reasons,
		SimSeconds:  rep.MaintainSeconds + rep.StatsSeconds,
	}, nil
}

// Save persists the system — base logs, opportunistic views, and the
// catalog metadata that makes them reusable — under dir. UDF code is not
// persisted; re-register UDFs after Open.
func (sys *System) Save(dir string) error {
	return persist.Save(sys.s, dir)
}

// Open restores a saved system. Re-register your UDF library afterwards:
// saved calibration scalars are applied automatically to matching names on
// the next RegisterMapUDF/RegisterAggUDF calls via ApplySavedCalibrations.
// Restored views keep their producing plans, so AppendRows maintains them
// incrementally exactly as the never-closed session would.
func Open(dir string) (*System, error) {
	s, saved, err := persist.Open(dir, cost.DefaultParams())
	if err != nil {
		return nil, err
	}
	return &System{s: s, saved: saved}, nil
}

// ApplySavedCalibrations re-applies persisted UDF calibration scalars to
// currently registered UDFs, returning the names applied. Call it after
// re-registering your UDF library on a restored system; UDFs without a
// saved scalar still need CalibrateUDF.
func (sys *System) ApplySavedCalibrations() []string {
	if sys.saved == nil {
		return nil
	}
	return sys.saved.ApplyScalars(sys.s)
}

// SetViewStorageBudget bounds the bytes opportunistic views may occupy;
// exceeding it evicts views by the given policy ("lru", "lfu",
// "cost-benefit", or "fifo"). A zero budget means unlimited.
func (sys *System) SetViewStorageBudget(bytes int64, policy string) error {
	sys.s.Store.ViewCapacityBytes = bytes
	switch policy {
	case "", "lru":
		sys.s.Store.Policy = storage.PolicyLRU
	case "lfu":
		sys.s.Store.Policy = storage.PolicyLFU
	case "cost-benefit":
		sys.s.Store.Policy = storage.PolicyCostBenefit
	case "fifo":
		sys.s.Store.Policy = storage.PolicyFIFO
	default:
		return fmt.Errorf("opportune: unknown reclamation policy %q", policy)
	}
	return nil
}
