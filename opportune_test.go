package opportune

import (
	"strings"
	"testing"

	"opportune/internal/obs"
)

func demoSystem(t *testing.T) *System {
	t.Helper()
	sys := New()
	var rows [][]any
	texts := []string{"wine is great", "bad day", "good wine good life", "coffee", "wine wine wine"}
	for i := 0; i < 500; i++ {
		rows = append(rows, []any{i, i % 10, texts[i%len(texts)]})
	}
	if err := sys.CreateTable("logs", "id", []string{"id", "user", "text"}, rows); err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterMapUDF(MapUDF{
		Name: "WINE", Args: 1, Outputs: []string{"score"}, Weight: 15,
		Fn: func(args, _ []any) [][]any {
			return [][]any{{float64(strings.Count(args[0].(string), "wine"))}}
		},
	}); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestFacadeQuickstartFlow(t *testing.T) {
	sys := demoSystem(t)
	if s, err := sys.CalibrateUDF("WINE", "logs", []string{"text"}); err != nil || s < 10 {
		t.Fatalf("calibration: scalar=%v err=%v", s, err)
	}
	r1, err := sys.ExecOne(`SELECT user, SUM(score) AS s FROM logs APPLY WINE(text) GROUP BY user HAVING s > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rewritten {
		t.Error("first query rewritten with no views")
	}
	if len(r1.Rows) == 0 || len(r1.Columns) != 2 {
		t.Fatalf("result shape: %v %d rows", r1.Columns, len(r1.Rows))
	}
	if len(sys.Views()) == 0 {
		t.Fatal("no opportunistic views retained")
	}
	// Revised threshold: must be rewritten and faster.
	r2, err := sys.ExecOne(`SELECT user, SUM(score) AS s FROM logs APPLY WINE(text) GROUP BY user HAVING s > 30`)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Rewritten {
		t.Error("revised query not rewritten")
	}
	if r2.ExecSeconds >= r1.ExecSeconds {
		t.Errorf("rewrite not faster: %g vs %g", r2.ExecSeconds, r1.ExecSeconds)
	}
	// Ground-truth check against a rewrite-free run.
	off := demoSystem(t)
	off.SetRewriteMode(RewriteOff)
	r3, err := off.ExecOne(`SELECT user, SUM(score) AS s FROM logs APPLY WINE(text) GROUP BY user HAVING s > 30`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Rows) != len(r3.Rows) {
		t.Errorf("rewritten rows %d != original rows %d", len(r2.Rows), len(r3.Rows))
	}
}

func TestFacadeMultiStatementAndModes(t *testing.T) {
	sys := demoSystem(t)
	rs, err := sys.Exec(`
		CREATE TABLE per_user AS SELECT user, COUNT(*) AS n FROM logs GROUP BY user;
		SELECT user, n FROM per_user WHERE n > 10;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Table != "per_user" || !strings.HasPrefix(rs[1].Table, "_q") {
		t.Fatalf("results: %+v", rs)
	}
	for _, mode := range []RewriteMode{RewriteOff, RewriteDP, RewriteSyntactic, RewriteBFR} {
		sys.SetRewriteMode(mode)
		if _, err := sys.ExecOne(`SELECT user, n FROM per_user WHERE n > 20`); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
	if _, err := sys.Exec("SELECT FROM nope"); err == nil {
		t.Error("bad script accepted")
	}
	if _, err := sys.Exec("SELECT a FROM t; SELECT b FROM u"); err == nil {
		t.Error("unknown tables accepted")
	}
	if _, err := sys.ExecOne("SELECT user FROM logs; SELECT user FROM logs"); err == nil {
		t.Error("ExecOne accepted two statements")
	}
}

func TestFacadeAggUDFAndValues(t *testing.T) {
	sys := New()
	err := sys.CreateTable("t", "", []string{"k", "v", "f", "b", "n"},
		[][]any{
			{"a", 1, 1.5, true, nil},
			{"a", int64(2), 2.5, false, nil},
			{"b", 3, 3.5, true, nil},
		})
	if err != nil {
		t.Fatal(err)
	}
	err = sys.RegisterAggUDF(AggUDF{
		Name: "TOTAL", Args: 2, Keys: []string{"k"}, KeyArgs: []int{0},
		Outputs: []string{"sum"}, Weight: 2,
		Reduce: func(_ []any, rows [][]any, _ []any) []any {
			var s int64
			for _, r := range rows {
				s += r[0].(int64)
			}
			return []any{s}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.ExecOne(`SELECT k, sum FROM t APPLY TOTAL(k, v)`)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, row := range r.Rows {
		got[row[0].(string)] = row[1].(int64)
	}
	if got["a"] != 3 || got["b"] != 3 {
		t.Errorf("sums = %v", got)
	}
	// unsupported value type rejected
	if err := sys.CreateTable("bad", "", []string{"x"}, [][]any{{struct{}{}}}); err == nil {
		t.Error("struct value accepted")
	}
}

func TestFacadeStorageBudget(t *testing.T) {
	sys := demoSystem(t)
	if err := sys.SetViewStorageBudget(1, "nope"); err == nil {
		t.Error("unknown policy accepted")
	}
	for _, p := range []string{"lru", "lfu", "cost-benefit", "fifo", ""} {
		if err := sys.SetViewStorageBudget(10_000, p); err != nil {
			t.Errorf("policy %q: %v", p, err)
		}
	}
	// Tiny budget: views get evicted, queries still work.
	if err := sys.SetViewStorageBudget(500, "lru"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ExecOne(`SELECT user, COUNT(*) AS n FROM logs GROUP BY user`); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, v := range sys.Views() {
		total += v.SizeBytes
	}
	// Budget only bounds what is retained; the catalog must stay in sync.
	for _, v := range sys.Views() {
		if !sys.s.Store.Has(v.Name) {
			t.Errorf("catalog lists evicted view %s", v.Name)
		}
	}
	sys.DropViews()
	if len(sys.Views()) != 0 {
		t.Error("DropViews left views")
	}
}

func TestFacadeSaveOpen(t *testing.T) {
	dir := t.TempDir()
	sys := demoSystem(t)
	if _, err := sys.CalibrateUDF("WINE", "logs", []string{"text"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ExecOne(`SELECT user, SUM(score) AS s FROM logs APPLY WINE(text) GROUP BY user HAVING s > 1`); err != nil {
		t.Fatal(err)
	}
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}

	restored, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Re-register the UDF library (code is not persisted) and re-apply the
	// saved calibration.
	if err := restored.RegisterMapUDF(MapUDF{
		Name: "WINE", Args: 1, Outputs: []string{"score"}, Weight: 15,
		Fn: func(args, _ []any) [][]any {
			return [][]any{{float64(strings.Count(args[0].(string), "wine"))}}
		},
	}); err != nil {
		t.Fatal(err)
	}
	if applied := restored.ApplySavedCalibrations(); len(applied) != 1 || applied[0] != "WINE" {
		t.Fatalf("applied = %v", applied)
	}
	if len(restored.Views()) != len(sys.Views()) {
		t.Fatalf("views: %d vs %d", len(restored.Views()), len(sys.Views()))
	}
	// A revised query on the restored system reuses the restored views.
	r, err := restored.ExecOne(`SELECT user, SUM(score) AS s FROM logs APPLY WINE(text) GROUP BY user HAVING s > 30`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Rewritten {
		t.Error("restored system did not reuse its views")
	}
	if _, err := Open(t.TempDir()); err == nil {
		t.Error("Open of empty dir succeeded")
	}
}

func TestFacadeClusterTable(t *testing.T) {
	build := func(cluster bool) *System {
		t.Helper()
		sys := New()
		var logs, visits [][]any
		for i := 0; i < 400; i++ {
			logs = append(logs, []any{i, i % 20, float64(i % 7)})
			visits = append(visits, []any{i, (i * 3) % 20, i % 5})
		}
		if err := sys.CreateTable("logs", "id", []string{"id", "user", "amt"}, logs); err != nil {
			t.Fatal(err)
		}
		if err := sys.CreateTable("visits", "vid", []string{"vid", "visitor", "place"}, visits); err != nil {
			t.Fatal(err)
		}
		if cluster {
			// Co-partitioned: both sides hash-clustered on the join key
			// with the same bucket count.
			if err := sys.ClusterTable("logs", []string{"user"}, 32); err != nil {
				t.Fatal(err)
			}
			if err := sys.ClusterTable("visits", []string{"visitor"}, 32); err != nil {
				t.Fatal(err)
			}
		}
		return sys
	}
	const joinSQL = `SELECT user, COUNT(*) AS events FROM
	  (SELECT user, amt FROM logs) JOIN (SELECT visitor, place FROM visits)
	  ON user = visitor GROUP BY user`

	clustered := build(true)
	reg := obs.NewRegistry()
	clustered.Session().Instrument(reg)
	rc, err := clustered.ExecOne(joinSQL)
	if err != nil {
		t.Fatal(err)
	}
	plain := build(false)
	rp, err := plain.ExecOne(joinSQL)
	if err != nil {
		t.Fatal(err)
	}
	// The layout is execution-invisible except in time: same rows out.
	if len(rc.Rows) == 0 || len(rc.Rows) != len(rp.Rows) {
		t.Fatalf("results differ: %d vs %d rows", len(rc.Rows), len(rp.Rows))
	}
	snap := reg.Snapshot()
	if snap.Counters["mr_shuffle_bytes_eliminated_total"] == 0 {
		t.Error("co-partitioned join eliminated no shuffle bytes")
	}
	if snap.Counters["mr_partition_local_jobs_total"] == 0 {
		t.Error("no job took the partition-preserving path")
	}
	if rc.ExecSeconds >= rp.ExecSeconds {
		t.Errorf("clustered run not faster: %g vs %g sim-s", rc.ExecSeconds, rp.ExecSeconds)
	}

	// Declaration errors.
	sys := build(false)
	for _, bad := range []struct {
		table string
		cols  []string
		n     int
	}{
		{"nosuch", []string{"user"}, 32},
		{"logs", []string{"nocol"}, 32},
		{"logs", nil, 32},
		{"logs", []string{"user"}, 0},
	} {
		if err := sys.ClusterTable(bad.table, bad.cols, bad.n); err == nil {
			t.Errorf("ClusterTable(%q, %v, %d) accepted", bad.table, bad.cols, bad.n)
		}
	}
}
