#!/usr/bin/env bash
# bench_json.sh — run the hot-path benchmark suite with -benchmem and write
# the tracked trajectory JSON (ns/op, B/op, allocs/op per benchmark).
#
# Usage:
#   scripts/bench_json.sh [out.json]          # fill the "after" column
#   BENCH_COL=before scripts/bench_json.sh    # fill the "before" column
#
# Environment knobs:
#   BENCH_COL    before|after   column the run fills          (default after)
#   BENCH_MERGE  path           prior JSON to merge with      (default out.json if it exists)
#   BENCH_PKGS   packages       packages to benchmark         (default . ./internal/mr ./internal/rewrite ./internal/optimizer)
#   BENCH_TIME   duration       -benchtime per benchmark      (default 2s)
#   BENCH_FILTER regexp         -bench selector               (default .)
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_PR4.json}
col=${BENCH_COL:-after}
pkgs=${BENCH_PKGS:-". ./internal/mr ./internal/rewrite ./internal/optimizer"}
benchtime=${BENCH_TIME:-2s}
filter=${BENCH_FILTER:-.}
merge=${BENCH_MERGE:-}
if [ -z "$merge" ] && [ -f "$out" ]; then
  merge="$out"
fi

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# shellcheck disable=SC2086
go test -run '^$' -bench "$filter" -benchmem -benchtime "$benchtime" $pkgs | tee "$tmp"

merge_args=()
if [ -n "$merge" ]; then
  cp "$merge" "$tmp.prior"
  merge_args=(-merge "$tmp.prior")
  trap 'rm -f "$tmp" "$tmp.prior"' EXIT
fi
go run ./cmd/benchjson -col "$col" "${merge_args[@]}" -o "$out" < "$tmp"
echo "benchmark trajectory written to $out (column: $col)"
