#!/bin/sh
# Smoke test for the benchmark harness and its observability export: run one
# quick experiment with -metrics and validate the output file.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/benchrunner" ./cmd/benchrunner
go build -o "$tmp/metricscheck" ./cmd/metricscheck

"$tmp/benchrunner" -quick -exp fig7 -metrics "$tmp/metrics.json" >"$tmp/bench.out"
"$tmp/metricscheck" "$tmp/metrics.json"

# The append-ingest scenario: incremental view maintenance vs full
# recompute, with its built-in cross-arm byte-identity check.
"$tmp/benchrunner" -quick -exp ingest -metrics "$tmp/ingest-metrics.json" >"$tmp/ingest.out"
"$tmp/metricscheck" "$tmp/ingest-metrics.json"
grep -q "sim speedup" "$tmp/ingest.out"

# The always-on multi-tenant service: Zipfian closed-loop load through the
# micro-batching pipeline, vs batch-size-1 on the same seed.
"$tmp/benchrunner" -quick -exp service -metrics "$tmp/service-metrics.json" >"$tmp/service.out"
"$tmp/metricscheck" "$tmp/service-metrics.json"
grep -q "wall speedup" "$tmp/service.out"

# Partition-aware planning: shuffle elimination on hash-clustered logs.
# The experiment carries its own oracles (byte-identical results across
# arms, equal shuffle volumes, strict sim-seconds win) and fails loudly on
# any violation; its arms use private registries, so the partition counter
# family in the exports above (awareness is on by default) is what
# metricscheck's family check validates.
"$tmp/benchrunner" -quick -exp partition >"$tmp/partition.out"
grep -q "sim improvement" "$tmp/partition.out"
# Map-pipeline fusion: fused columnar kernels vs the row interpreter on the
# same compiled jobs. The experiment's own oracles (byte-identical results,
# equal counters outside mr_fused_*, equal sim-seconds) fail loudly and its
# arms use private registries — the fused counter family in the exports
# above (fusion is on by default) is what metricscheck's family check
# validates. The greppable line proves the fused arm really compiled
# kernels.
"$tmp/benchrunner" -quick -exp fusion >"$tmp/fusion.out"
grep -q "fused jobs" "$tmp/fusion.out"
# The reduce-heavy arm: grouped queries over hash-distributed bases must
# compile combine/reduce agg kernels and cross at least one partition-local
# boundary (the experiment's reduce oracles enforce the counts).
grep -q "reduce-fused" "$tmp/fusion.out"

echo "bench-smoke ok"
