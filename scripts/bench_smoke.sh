#!/bin/sh
# Smoke test for the benchmark harness and its observability export: run one
# quick experiment with -metrics and validate the output file.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/benchrunner" ./cmd/benchrunner
go build -o "$tmp/metricscheck" ./cmd/metricscheck

"$tmp/benchrunner" -quick -exp fig7 -metrics "$tmp/metrics.json" >"$tmp/bench.out"
"$tmp/metricscheck" "$tmp/metrics.json"
echo "bench-smoke ok"
