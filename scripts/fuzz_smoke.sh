#!/bin/sh
# Fuzz smoke: run every native fuzz target briefly (go only allows one
# -fuzz pattern per invocation, so targets run one at a time). Seed corpora
# live under each package's testdata/fuzz/<Target>/ and are always exercised
# first; new inputs found here stay in the build cache, while crashers are
# written to testdata and fail the run.
set -eu

FUZZTIME="${FUZZTIME:-20s}"

run() {
	pkg=$1
	target=$2
	echo "fuzz-smoke: $pkg $target ($FUZZTIME)"
	go test -run '^$' -fuzz "^${target}\$" -fuzztime "$FUZZTIME" "$pkg"
}

run ./internal/hiveql FuzzParse
run ./internal/data FuzzReadRelation
run ./internal/data FuzzKeyPrefix
run ./internal/afk FuzzPartitionCompat
run ./internal/optimizer FuzzFusedPipeline
run ./internal/optimizer FuzzFusedAgg
echo "fuzz-smoke ok"
