#!/bin/sh
# Tier-1 verification: formatting, build, vet, race-enabled full test suite.
set -eux

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi
go build ./...
go vet ./...
go test -race ./...
